// Worker-pool supervision tests: the wire protocol (framing, codecs, torn
// frames), and the Supervisor driving real `gputc worker` subprocesses —
// happy-path dispatch, crash containment, hang detection, crash-loop breaker
// trip and half-open recovery, and the zero-zombie guarantee.

#include "service/supervisor.h"

#include <errno.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "service/circuit_breaker.h"
#include "service/worker_process.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace gputc {
namespace {

// Workers inherit this process's environment (that is the documented way to
// give a whole pool an ambient schedule), so a CI-level GPUTC_FAILPOINTS
// would leak into every worker these tests spawn. Strip it up front — the
// same hygiene the crash harness applies to its children — so each test's
// own per-request schedule is the only fault source.
class StripAmbientFailpoints : public ::testing::Environment {
 public:
  void SetUp() override { ::unsetenv("GPUTC_FAILPOINTS"); }
};
::testing::Environment* const kStripAmbient =
    ::testing::AddGlobalTestEnvironment(new StripAmbientFailpoints);

std::string Binary() { return GPUTC_CLI_PATH; }

/// A small deterministic generated graph: fast to count, no files needed.
WorkerRequest GenRequest(const std::string& id) {
  WorkerRequest request;
  request.id = id;
  request.source = "gen:er:nodes=200,edges=800,seed=5";
  request.kind = BatchRequest::Kind::kGenerate;
  request.target = "er";
  request.params = {{"nodes", "200"}, {"edges", "800"}, {"seed", "5"}};
  request.chain = "Hu,cpu";
  return request;
}

SupervisorOptions FastOptions() {
  SupervisorOptions options;
  options.binary = Binary();
  options.workers = 1;
  options.heartbeat_interval_ms = 20.0;
  options.heartbeat_misses = 3;
  options.backoff_base_ms = 5.0;
  options.backoff_cap_ms = 50.0;
  options.watchdog_period_ms = 5.0;
  return options;
}

int64_t RestartCount(const std::string& reason) {
  return MetricsRegistry::Global()
      .GetCounter("gputc_worker_restarts_total",
                  "Worker subprocess deaths requiring a restart, by cause",
                  {{"reason", reason}})
      .value();
}

double ActiveGaugeValue() {
  return MetricsRegistry::Global()
      .GetGauge("gputc_worker_active",
                "Live (spawned, un-reaped) worker subprocesses")
      .value();
}

/// True when this process has no un-reaped children at all — the post-test
/// zombie sweep. Uses WNOHANG so a live (non-zombie) child would also show
/// up as a failure, which is what we want after Shutdown.
bool NoChildProcesses() {
  const int pid = ::waitpid(-1, nullptr, WNOHANG);
  return pid < 0 && errno == ECHILD;
}

// -- wire codec ------------------------------------------------------------

TEST(WorkerWireTest, RequestRoundTripsThroughCodec) {
  WorkerRequest request;
  request.id = "3:gen:er";
  request.source = "gen:er:nodes=10,edges=20,seed=1";
  request.kind = BatchRequest::Kind::kGenerate;
  request.target = "er";
  request.params = {{"nodes", "10"}, {"note", "line1\nline2\\tail=x"}};
  request.timeout_ms = 123.5;
  request.chain = "Hu,cpu";
  request.failpoints = "tc.block=crash@1;io.load=data_loss%0.5$7";

  const StatusOr<WorkerRequest> decoded =
      DecodeWorkerRequest(EncodeWorkerRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->source, request.source);
  EXPECT_EQ(decoded->kind, request.kind);
  EXPECT_EQ(decoded->target, request.target);
  EXPECT_EQ(decoded->params, request.params);
  EXPECT_EQ(decoded->timeout_ms, request.timeout_ms);
  EXPECT_EQ(decoded->chain, request.chain);
  EXPECT_EQ(decoded->failpoints, request.failpoints);
}

TEST(WorkerWireTest, ResultRoundTripsThroughCodec) {
  WorkerResult result;
  result.code = StatusCode::kResourceExhausted;
  result.message = "chain exhausted:\n  Hu/base -> INTERNAL";
  result.stage = "Hu";
  result.variant = "no-aorder";
  result.triangles = 123456789012345;
  result.attempts = 3;
  result.trace = {"Hu/base -> INTERNAL: injected", "Hu/no-aorder -> OK"};
  result.materialize_ms = 1.25;
  result.exec_ms = 99.75;

  const StatusOr<WorkerResult> decoded =
      DecodeWorkerResult(EncodeWorkerResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, result.code);
  EXPECT_EQ(decoded->message, result.message);
  EXPECT_EQ(decoded->stage, result.stage);
  EXPECT_EQ(decoded->variant, result.variant);
  EXPECT_EQ(decoded->triangles, result.triangles);
  EXPECT_EQ(decoded->attempts, result.attempts);
  EXPECT_EQ(decoded->trace, result.trace);
  EXPECT_EQ(decoded->materialize_ms, result.materialize_ms);
  EXPECT_EQ(decoded->exec_ms, result.exec_ms);
}

TEST(WorkerWireTest, DecodeIsStrictAboutUnknownKeysAndMissingId) {
  EXPECT_EQ(DecodeWorkerRequest("bogus=1\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeWorkerRequest("source=x\n").status().code(),
            StatusCode::kInvalidArgument);  // No id.
  EXPECT_EQ(DecodeWorkerResult("attempts=not-a-number\n").status().code(),
            StatusCode::kInvalidArgument);
}

// -- framing ---------------------------------------------------------------

TEST(WorkerFrameTest, FrameRoundTripsOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteFrame(fds[1], kFrameHeartbeat, "tick").ok());
  const StatusOr<WireFrame> frame = ReadFrame(fds[0]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, kFrameHeartbeat);
  EXPECT_EQ(frame->body, "tick");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WorkerFrameTest, CleanEofIsFailedPreconditionNotDataLoss) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(),
            StatusCode::kFailedPrecondition);
  ::close(fds[0]);
}

TEST(WorkerFrameTest, TornFrameIsDataLoss) {
  // A full header promising 100 payload bytes, then EOF after 10: the
  // signature a SIGKILLed writer leaves behind.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const char header[8] = {100, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::write(fds[1], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  const char partial[10] = {'H', 'x', 'x', 'x', 'x', 'x', 'x', 'x', 'x', 'x'};
  ASSERT_EQ(::write(fds[1], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(), StatusCode::kDataLoss);
  ::close(fds[0]);
}

TEST(WorkerFrameTest, ChecksumMismatchIsDataLoss) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // len=5, crc deliberately wrong, payload "Hello".
  const unsigned char bytes[] = {5,   0,   0,   0,   0xde, 0xad, 0xbe,
                                 0xef, 'H', 'e', 'l', 'l',  'o'};
  ASSERT_EQ(::write(fds[1], bytes, sizeof(bytes)),
            static_cast<ssize_t>(sizeof(bytes)));
  ::close(fds[1]);
  EXPECT_EQ(ReadFrame(fds[0]).status().code(), StatusCode::kDataLoss);
  ::close(fds[0]);
}

TEST(WorkerFrameTest, ReadWithDeadlineTimesOutOnASilentPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_EQ(ReadFrameWithDeadline(fds[0], Deadline::AfterMillis(30), 5)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
  ::close(fds[0]);
  ::close(fds[1]);
}

// -- spawn fail points -----------------------------------------------------

TEST(WorkerSpawnTest, SpawnFailPointFailsBeforeFork) {
  FailPointRegistry::Instance().Reset();
  FailPointRegistry::Instance().Arm("worker.spawn", FailPointSpec{});
  WorkerSpawnOptions options;
  options.binary = Binary();
  const StatusOr<WorkerProcess> spawned = WorkerProcess::Spawn(options);
  FailPointRegistry::Instance().Reset();
  ASSERT_FALSE(spawned.ok());
  EXPECT_EQ(spawned.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(NoChildProcesses());  // Failed before fork: nothing to reap.
}

TEST(WorkerSpawnTest, ExecFailPointReportsExecveErrnoFromTheChild) {
  FailPointRegistry::Instance().Reset();
  FailPointRegistry::Instance().Arm("worker.exec", FailPointSpec{});
  WorkerSpawnOptions options;
  options.binary = Binary();
  const StatusOr<WorkerProcess> spawned = WorkerProcess::Spawn(options);
  FailPointRegistry::Instance().Reset();
  ASSERT_FALSE(spawned.ok());
  EXPECT_NE(spawned.status().message().find("exec"), std::string::npos)
      << spawned.status().ToString();
  EXPECT_TRUE(NoChildProcesses());  // Spawn reaps its own exec failures.
}

// -- supervised dispatch ---------------------------------------------------

TEST(SupervisorTest, DispatchesARequestAndReusesTheWorker) {
  Supervisor supervisor(FastOptions());
  ASSERT_TRUE(supervisor.Start().ok());

  const StatusOr<WorkerDispatch> first =
      supervisor.Execute(GenRequest("1:gen:er"), Deadline::Infinite());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->result.status().ok()) << first->result.message;
  EXPECT_GT(first->result.triangles, 0);
  EXPECT_EQ(first->result.stage, "Hu");
  EXPECT_GT(first->pid, 0);
  EXPECT_EQ(supervisor.ActiveWorkers(), 1);
  EXPECT_EQ(ActiveGaugeValue(), 1.0);

  const StatusOr<WorkerDispatch> second =
      supervisor.Execute(GenRequest("2:gen:er"), Deadline::Infinite());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->pid, first->pid);  // Same worker, warm reuse.
  EXPECT_EQ(second->result.triangles, first->result.triangles);

  supervisor.Shutdown();
  EXPECT_EQ(supervisor.ActiveWorkers(), 0);
  EXPECT_EQ(ActiveGaugeValue(), 0.0);
  EXPECT_TRUE(NoChildProcesses());
}

TEST(SupervisorTest, WorkerCrashFailsOnlyThatRequestAndRestarts) {
  const int64_t crashes_before = RestartCount("crash");
  Supervisor supervisor(FastOptions());
  ASSERT_TRUE(supervisor.Start().ok());

  WorkerRequest poisoned = GenRequest("1:gen:er");
  poisoned.failpoints = "tc.block=crash@1";
  const StatusOr<WorkerDispatch> crashed =
      supervisor.Execute(poisoned, Deadline::Infinite());
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kInternal);
  EXPECT_NE(crashed.status().message().find("worker crashed"),
            std::string::npos)
      << crashed.status().ToString();
  EXPECT_EQ(RestartCount("crash"), crashes_before + 1);

  // The pool recovers: the next request respawns a worker and succeeds.
  const StatusOr<WorkerDispatch> clean =
      supervisor.Execute(GenRequest("2:gen:er"), Deadline::Infinite());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_GT(clean->result.triangles, 0);

  supervisor.Shutdown();
  EXPECT_TRUE(NoChildProcesses());
}

TEST(SupervisorTest, TornResultFrameIsClassifiedAsACrashNotDataLoss) {
  const int64_t crashes_before = RestartCount("crash");
  Supervisor supervisor(FastOptions());
  ASSERT_TRUE(supervisor.Start().ok());

  WorkerRequest poisoned = GenRequest("1:gen:er");
  poisoned.failpoints = "worker.response.torn=crash@1";
  const StatusOr<WorkerDispatch> torn =
      supervisor.Execute(poisoned, Deadline::Infinite());
  ASSERT_FALSE(torn.ok());
  // The half-written frame must surface as a crash of the worker, never as
  // DataLoss the caller might mistake for corrupt *storage*.
  EXPECT_EQ(torn.status().code(), StatusCode::kInternal);
  EXPECT_NE(torn.status().message().find("worker crashed"), std::string::npos)
      << torn.status().ToString();
  EXPECT_EQ(RestartCount("crash"), crashes_before + 1);

  supervisor.Shutdown();
  EXPECT_TRUE(NoChildProcesses());
}

TEST(SupervisorTest, WatchdogKillsAHungWorker) {
  const int64_t hangs_before = RestartCount("hang");
  Supervisor supervisor(FastOptions());
  ASSERT_TRUE(supervisor.Start().ok());

  WorkerRequest wedged = GenRequest("1:gen:er");
  wedged.failpoints = "worker.hang=internal@1";  // Sleep forever, no beats.
  const StatusOr<WorkerDispatch> hung =
      supervisor.Execute(wedged, Deadline::Infinite());
  ASSERT_FALSE(hung.ok());
  EXPECT_EQ(hung.status().code(), StatusCode::kInternal);
  EXPECT_NE(hung.status().message().find("worker hung"), std::string::npos)
      << hung.status().ToString();
  EXPECT_EQ(RestartCount("hang"), hangs_before + 1);

  supervisor.Shutdown();
  EXPECT_TRUE(NoChildProcesses());
}

TEST(SupervisorTest, CrashLoopTripsBreakerAndHalfOpenProbeRecovers) {
  double fake_now_ms = 0.0;
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 2;
  breaker_options.open_cooldown_ms = 1000.0;
  breaker_options.half_open_probes = 1;
  CircuitBreaker breaker(breaker_options, [&fake_now_ms] { return fake_now_ms; });

  SupervisorOptions options = FastOptions();
  options.breaker = &breaker;
  Supervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start().ok());

  WorkerRequest poisoned = GenRequest("1:gen:er");
  poisoned.failpoints = "tc.block=crash@1";
  for (int i = 0; i < breaker_options.failure_threshold; ++i) {
    const StatusOr<WorkerDispatch> crashed =
        supervisor.Execute(poisoned, Deadline::Infinite());
    ASSERT_FALSE(crashed.ok());
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open breaker: dispatch is refused with the marker the batch service
  // keys its cpu failover on.
  const StatusOr<WorkerDispatch> refused =
      supervisor.Execute(GenRequest("2:gen:er"), Deadline::Infinite());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsWorkerBreakerOpen(refused.status()));

  // Advance the fake clock past the cooldown: the next Execute is the
  // half-open probe; its clean result closes the breaker again.
  fake_now_ms += 2000.0;
  const StatusOr<WorkerDispatch> probe =
      supervisor.Execute(GenRequest("3:gen:er"), Deadline::Infinite());
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_GT(probe->result.triangles, 0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  supervisor.Shutdown();
  EXPECT_TRUE(NoChildProcesses());
}

TEST(SupervisorTest, CleanResultWithRequestLevelErrorDoesNotTripBreaker) {
  // A per-request injected fault (error, not crash) comes back as a clean
  // 'R' frame with a non-OK embedded status: worker health is fine, so the
  // breaker must see success, not failure.
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 1;  // Hair trigger.
  CircuitBreaker breaker(breaker_options);
  SupervisorOptions options = FastOptions();
  options.breaker = &breaker;
  Supervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start().ok());

  WorkerRequest faulted = GenRequest("1:gen:er");
  faulted.chain = "Hu";  // No cpu net: the injected fault exhausts the chain.
  faulted.failpoints = "tc.block=internal";
  const StatusOr<WorkerDispatch> dispatched =
      supervisor.Execute(faulted, Deadline::Infinite());
  ASSERT_TRUE(dispatched.ok()) << dispatched.status().ToString();
  EXPECT_FALSE(dispatched->result.status().ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  supervisor.Shutdown();
  EXPECT_TRUE(NoChildProcesses());
}

TEST(SupervisorTest, DrainRefusesNewWorkAndReapsIdleWorkers) {
  Supervisor supervisor(FastOptions());
  ASSERT_TRUE(supervisor.Start().ok());
  const StatusOr<WorkerDispatch> warm =
      supervisor.Execute(GenRequest("1:gen:er"), Deadline::Infinite());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(supervisor.ActiveWorkers(), 1);

  supervisor.RequestDrain(Deadline::AfterMillis(100));
  EXPECT_EQ(supervisor.ActiveWorkers(), 0);  // Idle worker reaped on drain.
  const StatusOr<WorkerDispatch> refused =
      supervisor.Execute(GenRequest("2:gen:er"), Deadline::Infinite());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);

  supervisor.Shutdown();
  EXPECT_TRUE(NoChildProcesses());
}

}  // namespace
}  // namespace gputc
