#include <gtest/gtest.h>

#include "graph/edge_list.h"

namespace gputc {
namespace {

TEST(EdgeListTest, AddGrowsVertexUniverse) {
  EdgeList list;
  list.Add(3, 7);
  EXPECT_EQ(list.num_vertices(), 8u);
  EXPECT_EQ(list.num_edges(), 1);
}

TEST(EdgeListTest, NormalizeRemovesSelfLoops) {
  EdgeList list;
  list.Add(1, 1);
  list.Add(0, 2);
  list.Normalize();
  EXPECT_EQ(list.num_edges(), 1);
  EXPECT_EQ(list.edges()[0], (Edge{0, 2}));
}

TEST(EdgeListTest, NormalizeDeduplicatesBothOrders) {
  EdgeList list;
  list.Add(2, 5);
  list.Add(5, 2);
  list.Add(2, 5);
  list.Normalize();
  EXPECT_EQ(list.num_edges(), 1);
  EXPECT_TRUE(list.IsNormalized());
}

TEST(EdgeListTest, NormalizeSorts) {
  EdgeList list;
  list.Add(4, 1);
  list.Add(0, 3);
  list.Add(2, 1);
  list.Normalize();
  ASSERT_EQ(list.num_edges(), 3);
  EXPECT_EQ(list.edges()[0], (Edge{0, 3}));
  EXPECT_EQ(list.edges()[1], (Edge{1, 2}));
  EXPECT_EQ(list.edges()[2], (Edge{1, 4}));
}

TEST(EdgeListTest, NormalizeIsIdempotent) {
  EdgeList list;
  list.Add(4, 1);
  list.Add(1, 4);
  list.Normalize();
  const auto first = list.edges();
  list.Normalize();
  EXPECT_EQ(list.edges(), first);
}

TEST(EdgeListTest, IsNormalizedDetectsViolations) {
  EdgeList unsorted;
  unsorted.Add(1, 2);
  unsorted.Add(0, 1);
  EXPECT_FALSE(unsorted.IsNormalized());

  EdgeList reversed;
  reversed.Add(2, 1);
  EXPECT_FALSE(reversed.IsNormalized());

  EdgeList good;
  good.Add(0, 1);
  good.Add(1, 2);
  EXPECT_TRUE(good.IsNormalized());
}

TEST(EdgeListTest, SetNumVerticesKeepsIsolatedVertices) {
  EdgeList list;
  list.Add(0, 1);
  list.set_num_vertices(10);
  EXPECT_EQ(list.num_vertices(), 10u);
}

TEST(EdgeListDeathTest, SetNumVerticesBelowEndpointAborts) {
  EdgeList list;
  list.Add(0, 5);
  EXPECT_DEATH(list.set_num_vertices(3), "endpoint");
}

}  // namespace
}  // namespace gputc
