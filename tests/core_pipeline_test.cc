#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/preprocess.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

TEST(PreprocessTest, DefaultsProduceValidOutput) {
  const Graph g = GeneratePowerLawConfiguration(1200, 2.1, 2, 150, 71);
  const PreprocessResult r = Preprocess(g, DeviceSpec::TitanXpLike());
  EXPECT_EQ(r.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
  EXPECT_TRUE(IsPermutation(r.vertex_perm));
  EXPECT_GE(r.total_ms, r.direction_ms);
  EXPECT_GT(r.direction_cost, 0.0);
  EXPECT_GT(r.lambda, 0.0);
}

TEST(PreprocessTest, PreservesTriangleCount) {
  const Graph g = GenerateRmat(9, 8, 72);
  const int64_t expected = CountTrianglesNodeIterator(g);
  for (DirectionStrategy dir :
       {DirectionStrategy::kIdBased, DirectionStrategy::kDegreeBased,
        DirectionStrategy::kADirection}) {
    for (OrderingStrategy ord :
         {OrderingStrategy::kOriginal, OrderingStrategy::kAOrder,
          OrderingStrategy::kDegree}) {
      PreprocessOptions options;
      options.direction = dir;
      options.ordering = ord;
      const PreprocessResult r =
          Preprocess(g, DeviceSpec::TitanXpLike(), options);
      EXPECT_EQ(CountTrianglesDirected(r.graph), expected)
          << ToString(dir) << "/" << ToString(ord);
    }
  }
}

TEST(PreprocessTest, BucketSizeDefaultsToBlockThreads) {
  const Graph g = GeneratePowerLawConfiguration(800, 2.0, 2, 100, 73);
  PreprocessOptions options;
  options.aorder.bucket_size = 0;  // Ask for the device default.
  const PreprocessResult r =
      Preprocess(g, DeviceSpec::TitanXpLike(), options);
  EXPECT_TRUE(IsPermutation(r.vertex_perm));
}

TEST(RunTriangleCountTest, MatchesCpuAcrossAlgorithms) {
  const Graph g = LoadDataset("email-Eucore");
  const int64_t expected = CountTrianglesForward(g);
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  for (TcAlgorithm algorithm : PaperAlgorithms()) {
    const RunResult r = RunTriangleCount(g, algorithm, spec);
    EXPECT_EQ(r.triangles, expected) << ToString(algorithm);
    EXPECT_GT(r.kernel_ms(), 0.0);
    EXPECT_GE(r.total_ms(), r.kernel_ms());
  }
}

TEST(RunTriangleCountTest, FoxUsesEdgeReordering) {
  // With A-order requested on Fox, vertices keep their ids (edge unit).
  const Graph g = LoadDataset("email-Eucore");
  PreprocessOptions options;
  options.direction = DirectionStrategy::kDegreeBased;
  options.ordering = OrderingStrategy::kAOrder;
  const RunResult r =
      RunTriangleCount(g, TcAlgorithm::kFox, DeviceSpec::TitanXpLike(), options);
  EXPECT_EQ(r.preprocess.vertex_perm,
            IdentityPermutation(g.num_vertices()));
  EXPECT_EQ(r.triangles, CountTrianglesForward(g));
  EXPECT_GT(r.preprocess.ordering_ms, 0.0);
}

TEST(CountTrianglesFacadeTest, QuickstartPath) {
  EXPECT_EQ(CountTriangles(CompleteGraph(10)), 120);
  EXPECT_EQ(CountTriangles(CycleGraph(8)), 0);
}

TEST(PreprocessTest, CostDiagnosticsTrackStrategies) {
  const Graph g = LoadDataset("gowalla");
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  PreprocessOptions a, id;
  a.direction = DirectionStrategy::kADirection;
  id.direction = DirectionStrategy::kIdBased;
  a.ordering = id.ordering = OrderingStrategy::kOriginal;
  EXPECT_LT(Preprocess(g, spec, a).direction_cost,
            Preprocess(g, spec, id).direction_cost);
}

}  // namespace
}  // namespace gputc
