#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "service/cache_store.h"
#include "service/circuit_breaker.h"
#include "service/storage_health.h"
#include "util/durable_file.h"
#include "util/failpoint.h"
#include "util/fs_io.h"
#include "util/status.h"

// Storage-fault tolerance, bottom-up: the fs_io syscall boundary and its
// injection sites, the durable writers' rollback/poisoning discipline
// (fsyncgate: a failed fsync is never retried), the disk-cache circuit
// breaker, and the StorageHealthMonitor the serve loop reports through.

namespace gputc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" + std::to_string(::getpid());
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return -1;
  return static_cast<int64_t>(in.tellg());
}

/// Entries in `dir` whose names start with `prefix` (the leaked-temp check:
/// AtomicFileWriter temps are "<name>.tmp.<pid>.<seq>").
std::vector<std::string> EntriesWithPrefix(const std::string& dir,
                                           const std::string& prefix) {
  std::vector<std::string> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return found;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) == 0) found.push_back(name);
  }
  ::closedir(d);
  return found;
}

/// Every test wipes the fail-point registry so an ambient GPUTC_FAILPOINTS
/// (or a sibling test) cannot perturb its schedule. The fs_io wrappers and
/// the durable layer open their own FailPointScope, so arming alone is
/// enough — no scope management here.
class StorageFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().Reset(); }
  void TearDown() override { FailPointRegistry::Instance().Reset(); }

  void Arm(const std::string& schedule) {
    ASSERT_TRUE(FailPointRegistry::Instance().ArmFromString(schedule).ok())
        << schedule;
  }
};

// ---------------------------------------------------------------------------
// Errno mapping and labels.

TEST_F(StorageFaultTest, ErrnoToStatusMapsTheStorageTaxonomy) {
  EXPECT_EQ(ErrnoToStatus(ENOSPC, "write x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrnoToStatus(EDQUOT, "write x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrnoToStatus(EIO, "write x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ErrnoToStatus(ENOENT, "open x").code(), StatusCode::kNotFound);
  EXPECT_EQ(ErrnoToStatus(EACCES, "open x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ErrnoToStatus(EROFS, "write x").code(),
            StatusCode::kFailedPrecondition);

  // The symbolic name is embedded so metrics can label by errno.
  const Status enospc = ErrnoToStatus(ENOSPC, "write '/j'");
  EXPECT_NE(enospc.ToString().find("(ENOSPC)"), std::string::npos)
      << enospc.ToString();
  EXPECT_NE(enospc.ToString().find("write '/j'"), std::string::npos);
}

TEST_F(StorageFaultTest, StorageErrnoLabelsRoundTrip) {
  EXPECT_STREQ(StorageErrnoLabel(ENOSPC), "ENOSPC");
  EXPECT_STREQ(StorageErrnoLabel(EIO), "EIO");
  EXPECT_STREQ(StorageErrnoLabel(EDQUOT), "EDQUOT");
  EXPECT_STREQ(StorageErrnoLabel(EBADMSG), "other");

  EXPECT_STREQ(StorageErrnoLabelFromStatus(ErrnoToStatus(ENOSPC, "w")),
               "ENOSPC");
  EXPECT_STREQ(StorageErrnoLabelFromStatus(ErrnoToStatus(EIO, "w")), "EIO");
  EXPECT_STREQ(StorageErrnoLabelFromStatus(OkStatus()), "other");
  EXPECT_STREQ(StorageErrnoLabelFromStatus(InternalError("no label here")),
               "other");
}

TEST_F(StorageFaultTest, ErrnoAliasInjectionCarriesTheRealLabel) {
  const std::string path = TempPath("alias_fsync");
  StatusOr<int> fd = FsOpen(path, O_WRONLY | O_CREAT | O_TRUNC);
  ASSERT_TRUE(fd.ok());
  Arm("fs.fsync=enospc@1");
  const Status injected = FsFsync(*fd, path);
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(injected.ToString().find("injected ENOSPC"), std::string::npos)
      << injected.ToString();
  // Same label a real ENOSPC would produce — metrics cannot tell them apart.
  EXPECT_STREQ(StorageErrnoLabelFromStatus(injected), "ENOSPC");
  // @1: the budget is spent, the next fsync goes through.
  EXPECT_TRUE(FsFsync(*fd, path).ok());
  ::close(*fd);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// fs_io wrappers.

TEST_F(StorageFaultTest, FsWriteFullyWritesAndInjectsBeforeAnyByte) {
  const std::string path = TempPath("fswrite");
  StatusOr<int> fd = FsOpen(path, O_WRONLY | O_CREAT | O_TRUNC);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(FsWriteFully(*fd, "hello", 5, path).ok());

  Arm("fs.write=enospc");
  const Status injected = FsWriteFully(*fd, "world", 5, path);
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(injected.ToString().find("write '" + path + "'"),
            std::string::npos)
      << injected.ToString();
  ::close(*fd);
  // fs.write injects before any byte lands: the file holds only "hello".
  EXPECT_EQ(Slurp(path), "hello");
  ::unlink(path.c_str());
}

TEST_F(StorageFaultTest, FsWriteShortGenuinelyLandsTheFirstHalf) {
  const std::string path = TempPath("fsshort");
  StatusOr<int> fd = FsOpen(path, O_WRONLY | O_CREAT | O_TRUNC);
  ASSERT_TRUE(fd.ok());

  Arm("fs.write.short=enospc");
  const Status torn = FsWriteFully(*fd, "0123456789", 10, path);
  EXPECT_EQ(torn.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(torn.ToString().find("short write"), std::string::npos)
      << torn.ToString();
  ::close(*fd);
  // The first half is really on disk — a genuine torn write the rollback
  // paths above must clean up.
  EXPECT_EQ(Slurp(path), "01234");
  ::unlink(path.c_str());
}

TEST_F(StorageFaultTest, FsStatvfsReportsSpaceAndInjects) {
  StatusOr<FsSpace> space = FsStatvfs(::testing::TempDir());
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_GT(space->total_bytes, 0u);
  EXPECT_GE(space->total_bytes, space->free_bytes);

  Arm("fs.statvfs=eio");
  EXPECT_EQ(FsStatvfs(::testing::TempDir()).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(StorageFaultTest, SkipModelsADiskThatFilledMidRun) {
  // ^2: the first two fsyncs pass, every later one fails — and with no
  // @count the failure is persistent, exactly the shape of a full disk.
  Arm("fs.fsync=enospc^2");
  const std::string path = TempPath("skip_fsync");
  StatusOr<int> fd = FsOpen(path, O_WRONLY | O_CREAT | O_TRUNC);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(FsFsync(*fd, "a").ok());
  EXPECT_TRUE(FsFsync(*fd, "b").ok());
  EXPECT_FALSE(FsFsync(*fd, "c").ok());
  EXPECT_FALSE(FsFsync(*fd, "d").ok());
  EXPECT_FALSE(FsFsync(*fd, "e").ok());
  ::close(*fd);
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// AtomicFileWriter: the temp is unlinked on *every* error path and the
// target is never touched (satellite: injected-ENOSPC regression).

TEST_F(StorageFaultTest, AtomicWriterCleansUpWhenAppendHitsEnospc) {
  const std::string path = TempPath("atomic_append");
  StatusOr<AtomicFileWriter> writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  Arm("fs.write=enospc");
  const Status failed = writer->Append("payload");
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
  // Temp gone on the spot, target never created, writer dead.
  EXPECT_TRUE(EntriesWithPrefix(::testing::TempDir(),
                                "atomic_append_" + std::to_string(::getpid()) +
                                    ".tmp")
                  .empty());
  EXPECT_EQ(FileSize(path), -1);
  FailPointRegistry::Instance().Reset();
  EXPECT_FALSE(writer->Append("more").ok());
  EXPECT_FALSE(writer->Commit().ok());
}

TEST_F(StorageFaultTest, AtomicWriterCommitFsyncFailureLeavesOldContent) {
  const std::string path = TempPath("atomic_fsync");
  ASSERT_TRUE(WriteFileAtomic(path, "old content").ok());

  StatusOr<AtomicFileWriter> writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("new content").ok());
  Arm("fs.fsync=enospc");
  EXPECT_EQ(writer->Commit().code(), StatusCode::kResourceExhausted);
  FailPointRegistry::Instance().Reset();

  // Readers still see the old file; no temp litter.
  EXPECT_EQ(Slurp(path), "old content");
  EXPECT_TRUE(EntriesWithPrefix(::testing::TempDir(),
                                "atomic_fsync_" + std::to_string(::getpid()) +
                                    ".tmp")
                  .empty());
  ::unlink(path.c_str());
}

TEST_F(StorageFaultTest, AtomicWriterRenameFailureLeavesOldContent) {
  const std::string path = TempPath("atomic_rename");
  ASSERT_TRUE(WriteFileAtomic(path, "old content").ok());

  StatusOr<AtomicFileWriter> writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("new content").ok());
  Arm("fs.rename=eio");
  EXPECT_EQ(writer->Commit().code(), StatusCode::kDataLoss);
  FailPointRegistry::Instance().Reset();

  EXPECT_EQ(Slurp(path), "old content");
  EXPECT_TRUE(EntriesWithPrefix(::testing::TempDir(),
                                "atomic_rename_" + std::to_string(::getpid()) +
                                    ".tmp")
                  .empty());
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// SegmentWriter: torn-write rollback, fsync poisoning.

TEST_F(StorageFaultTest, SegmentWriterRollsBackTornWriteAndKeepsGoing) {
  const std::string path = TempPath("segment_rollback");
  StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append("record-one").ok());
  const int64_t intact = FileSize(path);
  ASSERT_GT(intact, 0);

  // A short write tears the frame mid-record; Append must ftruncate back to
  // the record start — the segment stays clean and usable.
  Arm("fs.write.short=enospc");
  EXPECT_EQ(writer->Append("record-two").code(),
            StatusCode::kResourceExhausted);
  FailPointRegistry::Instance().Reset();
  EXPECT_EQ(FileSize(path), intact) << "torn frame was not rolled back";
  EXPECT_TRUE(writer->poisoned().ok()) << "rollback succeeded, no poison";

  ASSERT_TRUE(writer->Append("record-three").ok());
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0], "record-one");
  EXPECT_EQ(scan->records[1], "record-three");
  EXPECT_EQ(scan->dropped_bytes, 0u);
  ::unlink(path.c_str());
}

TEST_F(StorageFaultTest, SegmentWriterFsyncFailurePoisonsForever) {
  const std::string path = TempPath("segment_poison");
  StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("durable").ok());

  Arm("fs.fsync=enospc@1");
  EXPECT_EQ(writer->Append("lost").code(), StatusCode::kResourceExhausted);
  FailPointRegistry::Instance().Reset();

  // fsyncgate: the kernel may have dropped the dirty pages while clearing
  // the error, so no further fsync on this fd can be trusted. The writer
  // stays poisoned even though the disk is "healthy" again.
  EXPECT_FALSE(writer->poisoned().ok());
  const Status after = writer->Append("retry");
  EXPECT_FALSE(after.ok());
  EXPECT_NE(after.ToString().find("poisoned segment"), std::string::npos)
      << after.ToString();

  // The discipline is reopen-or-fail: a fresh writer on the same path works.
  StatusOr<SegmentWriter> reopened = SegmentWriter::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->poisoned().ok());
  EXPECT_TRUE(reopened->Append("after-reopen").ok());
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// LineLog: a journal line is all-or-nothing (satellite: short-write
// handling — never a torn half-line).

TEST_F(StorageFaultTest, LineLogNeverKeepsATornHalfLine) {
  const std::string path = TempPath("linelog_torn");
  StatusOr<LineLog> log = LineLog::OpenTrunc(path, /*fsync_each=*/false);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_TRUE(log->WriteLine("first").ok());

  Arm("fs.write.short=enospc");
  const Status torn = log->WriteLine("half-of-this-line-landed");
  EXPECT_EQ(torn.code(), StatusCode::kResourceExhausted);
  FailPointRegistry::Instance().Reset();

  // The rollback keeps the log clean (not poisoned) and the next line lands
  // directly after the last complete one.
  EXPECT_TRUE(log->poisoned().ok());
  ASSERT_TRUE(log->WriteLine("third").ok());
  EXPECT_EQ(Slurp(path), "first\nthird\n");
  ::unlink(path.c_str());
}

TEST_F(StorageFaultTest, LineLogFsyncFailurePoisons) {
  const std::string path = TempPath("linelog_poison");
  StatusOr<LineLog> log = LineLog::OpenTrunc(path, /*fsync_each=*/true);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->WriteLine("durable").ok());

  Arm("fs.fsync=enospc@1");
  EXPECT_FALSE(log->WriteLine("lost").ok());
  FailPointRegistry::Instance().Reset();

  EXPECT_FALSE(log->poisoned().ok());
  const Status after = log->WriteLine("retry");
  EXPECT_FALSE(after.ok());
  EXPECT_NE(after.ToString().find("poisoned journal"), std::string::npos)
      << after.ToString();
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// DiskCacheStore breaker: tier 2 is benched after consecutive faults and
// re-admitted by a half-open probe; a failing cache disk never fails work.

TEST_F(StorageFaultTest, CacheBreakerBenchesTier2AndReprobes) {
  const std::string dir = TempPath("cache_breaker");
  // Injectable clock so the cooldown is deterministic.
  double now_ms = 0.0;
  DiskCacheStore store(dir, CircuitBreakerOptions{3, 1000.0, 1},
                       [&now_ms] { return now_ms; });
  ASSERT_TRUE(store.EnsureDir().ok());
  StorageHealthMonitor health;
  store.set_health(&health);

  PrepCacheKey key;
  key.canonical = "graph=g;order=degree";
  key.hash = 0xabcdef01u;
  key.id = "00000000abcdef01";

  Arm("cache.store=eio");
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(store.Store(key, "artifact-bytes").ok());
  }
  EXPECT_EQ(store.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(FailPointRegistry::Instance().hits("cache.store"), 3);
  EXPECT_EQ(health.errors_total(), 3);
  EXPECT_TRUE(health.degraded());
  EXPECT_NE(health.degraded_reason().find("cache"), std::string::npos)
      << health.degraded_reason();

  // Benched: no syscalls, loads miss, stores are skipped — the failpoint
  // hit counter proves the disk was never touched.
  const Status skipped = store.Store(key, "artifact-bytes");
  EXPECT_EQ(skipped.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(skipped.ToString().find("store skipped"), std::string::npos);
  const StatusOr<std::string> benched = store.Load(key);
  EXPECT_EQ(benched.status().code(), StatusCode::kNotFound);
  EXPECT_NE(benched.status().ToString().find("disk benched"),
            std::string::npos);
  EXPECT_EQ(FailPointRegistry::Instance().hits("cache.store"), 3);
  EXPECT_EQ(FailPointRegistry::Instance().hits("cache.load"), 0);

  // Disk recovers; past the cooldown a half-open probe goes through and a
  // success closes the breaker.
  FailPointRegistry::Instance().Reset();
  now_ms = 2000.0;
  ASSERT_TRUE(store.Store(key, "artifact-bytes").ok());
  EXPECT_EQ(store.breaker().state(), CircuitBreaker::State::kClosed);
  StatusOr<std::string> loaded = store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, "artifact-bytes");
}

TEST_F(StorageFaultTest, CacheMissesAreBenignAndDoNotTrip) {
  const std::string dir = TempPath("cache_benign");
  double now_ms = 0.0;
  DiskCacheStore store(dir, CircuitBreakerOptions{3, 1000.0, 1},
                       [&now_ms] { return now_ms; });
  ASSERT_TRUE(store.EnsureDir().ok());

  PrepCacheKey key;
  key.canonical = "absent";
  key.hash = 0x22u;
  key.id = "0000000000000022";
  // A miss is the cache working as designed, not a disk fault.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(store.Load(key).status().code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(store.breaker().state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// StorageHealthMonitor.

TEST_F(StorageFaultTest, ProbeReportsHealthyDiskAndExportsFreeBytes) {
  StorageHealthMonitor::Options options;
  options.probe_dir = ::testing::TempDir();
  // Watermarks of 0/0 so any real free space classifies as ok.
  options.low_free_bytes = 0;
  options.critical_free_bytes = 0;
  StorageHealthMonitor monitor(options);

  ASSERT_TRUE(monitor.ProbeNow().ok());
  EXPECT_EQ(monitor.disk_state(), StorageHealthMonitor::DiskState::kOk);
  EXPECT_GT(monitor.free_bytes(), 0u);
  EXPECT_FALSE(monitor.degraded());
  EXPECT_NE(MetricsRegistry::Global().PrometheusText().find(
                "gputc_disk_free_bytes"),
            std::string::npos);
}

TEST_F(StorageFaultTest, ProbeWriteFailureIsCritical) {
  StorageHealthMonitor::Options options;
  options.probe_dir = TempPath("no_such_dir") + "/missing";
  StorageHealthMonitor monitor(options);

  EXPECT_FALSE(monitor.ProbeNow().ok());
  EXPECT_EQ(monitor.disk_state(), StorageHealthMonitor::DiskState::kCritical);
  EXPECT_TRUE(monitor.degraded());
  EXPECT_GE(monitor.errors_total(), 1);
  EXPECT_NE(monitor.degraded_reason().find("disk critical"),
            std::string::npos)
      << monitor.degraded_reason();
}

TEST_F(StorageFaultTest, LowWatermarkDegradesWithoutStopping) {
  StorageHealthMonitor::Options options;
  options.probe_dir = ::testing::TempDir();
  // Any real filesystem is "low" against an absurd watermark — the serving
  // state the degraded /readyz header reports.
  options.low_free_bytes = UINT64_MAX;
  options.critical_free_bytes = 0;
  StorageHealthMonitor monitor(options);

  ASSERT_TRUE(monitor.ProbeNow().ok());
  EXPECT_EQ(monitor.disk_state(), StorageHealthMonitor::DiskState::kLow);
  EXPECT_TRUE(monitor.degraded());
  EXPECT_FALSE(monitor.strict_stopped());
}

TEST_F(StorageFaultTest, MaybeProbeIsRateLimited) {
  int64_t now = 0;
  StorageHealthMonitor::Options options;
  options.probe_dir = ::testing::TempDir();
  options.probe_interval_ms = 1000.0;
  options.low_free_bytes = 0;
  options.critical_free_bytes = 0;
  options.now_ms = [&now] { return now; };
  StorageHealthMonitor monitor(options);

  monitor.MaybeProbe();  // First call probes.
  EXPECT_EQ(monitor.disk_state(), StorageHealthMonitor::DiskState::kOk);

  // Inside the interval a statvfs fault is invisible: no probe runs.
  Arm("fs.statvfs=eio");
  now = 500;
  monitor.MaybeProbe();
  EXPECT_EQ(monitor.free_bytes(), monitor.free_bytes());
  const uint64_t before = monitor.free_bytes();
  EXPECT_GT(before, 0u);

  // Past the interval the probe runs again; statvfs fails (warn-only) but
  // the probe write still succeeds, so the disk stays serving.
  now = 1500;
  monitor.MaybeProbe();
  EXPECT_FALSE(monitor.strict_stopped());
}

TEST_F(StorageFaultTest, StrictStopAndDegradedReasonsAreFirstWins) {
  StorageHealthMonitor monitor;
  EXPECT_FALSE(monitor.strict_stopped());

  monitor.RecordStrictStop("WAL done append failed");
  monitor.RecordStrictStop("second reason must not clobber");
  EXPECT_TRUE(monitor.strict_stopped());
  EXPECT_EQ(monitor.strict_stop_reason(), "WAL done append failed");

  monitor.NoteDegraded("journal", "mirroring to stderr");
  monitor.NoteDegraded("journal", "later reason loses");
  EXPECT_TRUE(monitor.degraded());
  EXPECT_NE(monitor.degraded_reason().find("journal: mirroring to stderr"),
            std::string::npos)
      << monitor.degraded_reason();
  EXPECT_EQ(monitor.degraded_reason().find("later reason loses"),
            std::string::npos);
}

TEST_F(StorageFaultTest, RecordErrorFeedsTheErrnoLabeledCounter) {
  StorageHealthMonitor monitor;
  monitor.RecordError("wal", ErrnoToStatus(ENOSPC, "append intent"));
  monitor.RecordError("wal", OkStatus());  // OK statuses are ignored.
  EXPECT_EQ(monitor.errors_total(), 1);

  const std::string text = MetricsRegistry::Global().PrometheusText();
  EXPECT_NE(text.find("gputc_storage_errors_total"), std::string::npos);
  EXPECT_NE(text.find("errno=\"ENOSPC\""), std::string::npos) << text;
  EXPECT_NE(text.find("sink=\"wal\""), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Policy parsing + batch preflight.

TEST_F(StorageFaultTest, ParseStoragePolicyValues) {
  StatusOr<StoragePolicy> strict = ParseStoragePolicy("strict");
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(*strict, StoragePolicy::kStrict);
  EXPECT_STREQ(StoragePolicyName(*strict), "strict");

  StatusOr<StoragePolicy> degrade = ParseStoragePolicy("degrade");
  ASSERT_TRUE(degrade.ok());
  EXPECT_EQ(*degrade, StoragePolicy::kDegrade);
  EXPECT_STREQ(StoragePolicyName(*degrade), "degrade");

  const Status bad = ParseStoragePolicy("lenient").status();
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.ToString().find("expected strict or degrade"),
            std::string::npos);
}

TEST_F(StorageFaultTest, PreflightRefusesOnlyWhenSpaceIsShort) {
  // A byte of projected footprint always fits.
  EXPECT_TRUE(PreflightSpaceCheck(::testing::TempDir(), 1).ok());

  // No filesystem has half of UINT64_MAX free.
  const Status refused =
      PreflightSpaceCheck(::testing::TempDir(), UINT64_MAX / 2);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.ToString().find("free space or shrink the batch"),
            std::string::npos)
      << refused.ToString();

  // statvfs failure warns and admits: a disk that cannot report free space
  // may still take writes.
  Arm("fs.statvfs=eio");
  EXPECT_TRUE(PreflightSpaceCheck(::testing::TempDir(), UINT64_MAX / 2).ok());
  FailPointRegistry::Instance().Reset();

  // The dedicated site forces a deterministic refusal for the CLI tests.
  Arm("storage.preflight=enospc");
  const Status injected = PreflightSpaceCheck(::testing::TempDir(), 1);
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(injected.ToString().find("injected ENOSPC"), std::string::npos);
}

TEST_F(StorageFaultTest, EstimateBatchStorageBytesScalesWithTheManifest) {
  const uint64_t empty = EstimateBatchStorageBytes(0);
  const uint64_t one = EstimateBatchStorageBytes(1);
  const uint64_t many = EstimateBatchStorageBytes(1000);
  EXPECT_GT(empty, 0u) << "headroom even for an empty manifest";
  EXPECT_GT(one, empty);
  EXPECT_GT(many, one);
  EXPECT_GE(many - empty, 1000u * 1024u)
      << "per-request footprint should be kilobytes, not bytes";
}

}  // namespace
}  // namespace gputc
