// Tests for the batch write-ahead log: replay semantics (done lines verbatim,
// pending in intent order), first-done-wins dedup, torn-tail tolerance, and
// accumulation across reopen cycles.

#include "service/wal.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace gputc {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "/wal_test_" + std::to_string(counter++);
  }
  void TearDown() override {
    std::remove(WalLogPath(dir_).c_str());
    ::rmdir(dir_.c_str());
  }
  std::string dir_;
};

TEST_F(WalTest, MissingDirectoryReplaysEmpty) {
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->empty());
  EXPECT_EQ(replay->torn_bytes, 0u);
}

TEST_F(WalTest, IntentThenDoneReplaysVerbatim) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("1:a").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "ok", "{\"id\":\"1:a\"}").ok());
    ASSERT_TRUE(wal->LogIntent("2:b").ok());
    // 2:b never reaches done — the crash window.
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->done.size(), 1u);
  EXPECT_EQ(replay->done[0].id, "1:a");
  EXPECT_EQ(replay->done[0].outcome, "ok");
  EXPECT_EQ(replay->done[0].line, "{\"id\":\"1:a\"}");
  ASSERT_EQ(replay->pending.size(), 1u);
  EXPECT_EQ(replay->pending[0], "2:b");
  const WalDoneRecord* record = replay->FindDone("1:a");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->outcome, "ok");
  EXPECT_EQ(record->line, "{\"id\":\"1:a\"}");
  EXPECT_EQ(replay->FindDone("2:b"), nullptr);
}

TEST_F(WalTest, PendingPreservesIntentOrder) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    for (const char* id : {"3:c", "1:a", "2:b"}) {
      ASSERT_TRUE(wal->LogIntent(id).ok());
    }
    ASSERT_TRUE(wal->LogDone("1:a", "ok", "{}").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->pending.size(), 2u);
  EXPECT_EQ(replay->pending[0], "3:c");
  EXPECT_EQ(replay->pending[1], "2:b");
}

TEST_F(WalTest, FirstDoneWinsOnDuplicates) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("1:a").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "ok", "first outcome").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "failed", "second outcome").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->done.size(), 1u);
  EXPECT_EQ(replay->done[0].outcome, "ok");
  EXPECT_EQ(replay->done[0].line, "first outcome");
}

TEST_F(WalTest, AccumulatesAcrossReopenCycles) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("1:a").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "ok", "run one").ok());
  }
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("2:b").ok());
    ASSERT_TRUE(wal->LogDone("2:b", "ok", "run two").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->done.size(), 2u);
  EXPECT_EQ(replay->done[0].line, "run one");
  EXPECT_EQ(replay->done[1].line, "run two");
  EXPECT_TRUE(replay->pending.empty());
}

TEST_F(WalTest, TornTailDropsOnlyTheTear) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("1:a").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "ok", "{\"id\":\"1:a\"}").ok());
    ASSERT_TRUE(wal->LogIntent("2:b").ok());
  }
  const std::string log = WalLogPath(dir_);
  const std::string bytes = Slurp(log);
  {
    std::ofstream out(log, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 4));
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  EXPECT_GT(replay->torn_bytes, 0u);
  // The torn record was 2:b's intent; the done before it survives intact.
  ASSERT_EQ(replay->done.size(), 1u);
  EXPECT_EQ(replay->done[0].id, "1:a");
  EXPECT_TRUE(replay->pending.empty());
}

TEST_F(WalTest, ZeroFilledTailDoesNotBrickReplay) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("1:a").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "ok", "{\"id\":\"1:a\"}").ok());
  }
  // A crash can extend the file without its data blocks ever reaching disk;
  // those blocks read back as zeros. Replay must treat them as a torn tail
  // (resume continues), not as records (which would fail decode and brick
  // the resume with DataLoss).
  {
    std::ofstream out(WalLogPath(dir_),
                      std::ios::binary | std::ios::app);
    const std::string zeros(64, '\0');
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->torn_bytes, 64u);
  ASSERT_EQ(replay->done.size(), 1u);
  EXPECT_EQ(replay->done[0].id, "1:a");
  EXPECT_TRUE(replay->pending.empty());
}

TEST_F(WalTest, OpenOnceReplayMatchesReadOnlyReplay) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("1:a").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "rejected", "shed").ok());
    ASSERT_TRUE(wal->LogIntent("2:b").ok());
  }
  StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok());
  StatusOr<WalReplay> from_open = wal->Replay();
  ASSERT_TRUE(from_open.ok());
  StatusOr<WalReplay> from_disk = ReplayWal(dir_);
  ASSERT_TRUE(from_disk.ok());
  ASSERT_EQ(from_open->done.size(), from_disk->done.size());
  EXPECT_EQ(from_open->done[0].id, from_disk->done[0].id);
  EXPECT_EQ(from_open->done[0].outcome, "rejected");
  EXPECT_EQ(from_open->done[0].line, "shed");
  ASSERT_EQ(from_open->pending.size(), 1u);
  EXPECT_EQ(from_open->pending[0], "2:b");
}

TEST_F(WalTest, VersionRecordsAreCollectedNotFolded) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogVersion("gputc 0.8.0 (Release; sanitizer=none)").ok());
    ASSERT_TRUE(wal->LogIntent("1:a").ok());
    ASSERT_TRUE(wal->LogDone("1:a", "ok", "{}").ok());
  }
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogVersion("gputc 0.9.0 (Debug; sanitizer=address)").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  // Version stamps never masquerade as work: done/pending are unaffected.
  ASSERT_EQ(replay->done.size(), 1u);
  EXPECT_TRUE(replay->pending.empty());
  ASSERT_EQ(replay->versions.size(), 2u);
  EXPECT_EQ(replay->versions[0], "gputc 0.8.0 (Release; sanitizer=none)");
  EXPECT_EQ(replay->versions[1], "gputc 0.9.0 (Debug; sanitizer=address)");
}

TEST_F(WalTest, VersionOnlyLogIsStillEmpty) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogVersion("gputc test").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  // empty() gates "is this a fresh resume" decisions; a bare version stamp
  // must not make a new WAL look like it has prior work.
  EXPECT_TRUE(replay->empty());
}

TEST_F(WalTest, IntentSpecSurvivesReplayForPendingOnly) {
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("net-1-1", "count graph.mtx --alg merge").ok());
    ASSERT_TRUE(wal->LogIntent("net-1-2", "count big.mtx").ok());
    ASSERT_TRUE(wal->LogDone("net-1-1", "ok", "{}").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->pending.size(), 1u);
  EXPECT_EQ(replay->pending[0], "net-1-2");
  ASSERT_EQ(replay->pending_specs.count("net-1-2"), 1u);
  EXPECT_EQ(replay->pending_specs.at("net-1-2"), "count big.mtx");
  // Completed intents do not linger in the spec map.
  EXPECT_EQ(replay->pending_specs.count("net-1-1"), 0u);
}

TEST_F(WalTest, SpeclessIntentStaysDecodableForBackCompat) {
  // Pre-0.8 WALs encode intents as bare ids; replay must keep accepting
  // them (pending listed, no spec entry) so old logs resume cleanly.
  {
    StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->LogIntent("7:g").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->pending.size(), 1u);
  EXPECT_EQ(replay->pending[0], "7:g");
  EXPECT_TRUE(replay->pending_specs.empty());
}

TEST_F(WalTest, CrcPassingButUndecodableRecordIsDataLoss) {
  ASSERT_TRUE(WriteAheadLog::Open(dir_).ok());
  {
    // Append a frame whose payload checksums fine but has a bogus type
    // byte: that is corruption the CRC cannot explain away.
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(WalLogPath(dir_));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("Zbogus-payload").ok());
  }
  StatusOr<WalReplay> replay = ReplayWal(dir_);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(replay.status().message().find("WAL record"), std::string::npos);
}

TEST_F(WalTest, OpenCreatesTheDirectory) {
  struct stat st;
  ASSERT_NE(::stat(dir_.c_str(), &st), 0);
  StatusOr<WriteAheadLog> wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(::stat(dir_.c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  EXPECT_EQ(wal->path(), WalLogPath(dir_));
}

}  // namespace
}  // namespace gputc
