// Tests for the observability layer: metric primitives under concurrency,
// span mechanics and nesting, the three exporters (Prometheus text, JSON,
// Chrome trace events), and the batch service's per-request trace plumbing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/batch_service.h"
#include "util/deadline.h"

namespace gputc {
namespace {

// -- metric primitives ------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("obs_test_total", "help");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5);
  // Same (name, labels) resolves to the same series.
  EXPECT_EQ(&registry.GetCounter("obs_test_total", "help"), &c);

  Gauge& g = registry.GetGauge("obs_test_gauge", "help");
  g.Set(2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(MetricsTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("obs_labeled_total", "help",
                                   {{"a", "1"}, {"b", "2"}});
  Counter& b = registry.GetCounter("obs_labeled_total", "help",
                                   {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  Counter& other =
      registry.GetCounter("obs_labeled_total", "help", {{"a", "2"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsTest, HistogramBucketsValuesCorrectly) {
  MetricsRegistry registry;
  HistogramMetric& h =
      registry.GetHistogram("obs_hist", "help", 0.0, 10.0, 5);
  h.Observe(-1.0);  // Below lo clamps into the first bucket.
  h.Observe(0.0);
  h.Observe(3.0);
  h.Observe(9.99);
  h.Observe(10.0);  // >= hi lands in the overflow bucket.
  h.Observe(1e9);
  const HistogramMetric::Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.counts.size(), 6u);
  EXPECT_EQ(snap.counts[0], 2);  // -1 and 0.
  EXPECT_EQ(snap.counts[1], 1);  // 3.
  EXPECT_EQ(snap.counts[4], 1);  // 9.99.
  EXPECT_EQ(snap.counts[5], 2);  // 10 and 1e9 overflow.
  EXPECT_EQ(snap.count, 6);
  EXPECT_DOUBLE_EQ(h.UpperEdge(0), 2.0);
  EXPECT_DOUBLE_EQ(h.UpperEdge(4), 10.0);
}

// Eight threads hammer one histogram while a reader keeps snapshotting: the
// snapshot invariant (count == sum of buckets) must hold at every instant,
// and the final snapshot must account for every observation exactly.
TEST(MetricsTest, HistogramSnapshotsStayCoherentUnderConcurrency) {
  MetricsRegistry registry;
  HistogramMetric& h =
      registry.GetHistogram("obs_concurrent_ms", "help", 0.0, 100.0, 10);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>((t * 31 + i) % 120));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots: coherent by construction, monotone in count.
  int64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const HistogramMetric::Snapshot snap = h.TakeSnapshot();
    const int64_t bucket_sum =
        std::accumulate(snap.counts.begin(), snap.counts.end(), int64_t{0});
    EXPECT_EQ(snap.count, bucket_sum);
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
  }
  for (std::thread& w : writers) w.join();
  const HistogramMetric::Snapshot final_snap = h.TakeSnapshot();
  EXPECT_EQ(final_snap.count, int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, ManyThreadsResolvingSeriesConcurrently) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry
            .GetCounter("obs_race_total", "help",
                        {{"shard", std::to_string(i % 4)}})
            .Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int64_t total = 0;
  for (const MetricSample& s : registry.Snapshot()) total += s.counter_value;
  EXPECT_EQ(total, kThreads * 1000);
}

// -- exporters --------------------------------------------------------------

TEST(MetricsTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("alpha_total", "Alpha things", {{"kind", "x"}})
      .Increment(3);
  registry.GetGauge("beta_ratio", "Beta level").Set(0.5);
  HistogramMetric& h = registry.GetHistogram("gamma_ms", "Gamma latency",
                                             0.0, 4.0, 2);
  h.Observe(1.0);
  h.Observe(3.0);
  h.Observe(9.0);
  const std::string expected =
      "# HELP alpha_total Alpha things\n"
      "# TYPE alpha_total counter\n"
      "alpha_total{kind=\"x\"} 3\n"
      "# HELP beta_ratio Beta level\n"
      "# TYPE beta_ratio gauge\n"
      "beta_ratio 0.5\n"
      "# HELP gamma_ms Gamma latency\n"
      "# TYPE gamma_ms histogram\n"
      "gamma_ms_bucket{le=\"2\"} 1\n"
      "gamma_ms_bucket{le=\"4\"} 2\n"
      "gamma_ms_bucket{le=\"+Inf\"} 3\n"
      "gamma_ms_sum 13\n"
      "gamma_ms_count 3\n";
  EXPECT_EQ(registry.PrometheusText(), expected);
}

TEST(MetricsTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("alpha_total", "Alpha things", {{"kind", "x"}})
      .Increment(3);
  HistogramMetric& h =
      registry.GetHistogram("gamma_ms", "Gamma latency", 0.0, 4.0, 2);
  h.Observe(1.0);
  h.Observe(9.0);
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"alpha_total\",\"type\":\"counter\","
      "\"labels\":{\"kind\":\"x\"},\"value\":3},"
      "{\"name\":\"gamma_ms\",\"type\":\"histogram\",\"labels\":{},"
      "\"histogram\":{\"lo\":0,\"hi\":4,\"counts\":[1,0,1],"
      "\"count\":2,\"sum\":10}}"
      "]}";
  EXPECT_EQ(registry.Json(), expected);
}

// -- spans ------------------------------------------------------------------

TEST(TraceTest, GeneratedTraceIdsAreUniqueAndNonZero) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t id = GenerateTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(TraceIdHex(0xabcdef).size(), 16u);
  EXPECT_EQ(TraceIdHex(0xabcdef), "0000000000abcdef");
}

TEST(TraceTest, InertSpanIsHarmless) {
  Span span;
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.SetAttr("key", "value");
  span.SetAttr("n", int64_t{7});
  span.Finish();  // No tracer: all of this must be a no-op.
}

TEST(TraceTest, SpansRecordNestingAndAttrs) {
  Tracer tracer;
  const uint64_t trace_id = tracer.NewTraceId();
  {
    Span root = tracer.StartSpan("root", trace_id);
    EXPECT_TRUE(root.active());
    Span child = tracer.StartSpan("child", trace_id, root.id());
    child.SetAttr("key", "value");
    child.SetAttr("n", int64_t{42});
    child.Finish();
    root.Finish();
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: child finished first.
  EXPECT_EQ(spans[0].name, "child");
  EXPECT_EQ(spans[1].name, "root");
  EXPECT_EQ(spans[0].trace_id, trace_id);
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].first, "key");
  EXPECT_EQ(spans[0].attrs[0].second, "value");
  EXPECT_EQ(spans[0].attrs[1].second, "42");
}

TEST(TraceTest, MoveTransfersOwnershipWithoutDoubleRecord) {
  Tracer tracer;
  {
    Span a = tracer.StartSpan("moved", tracer.NewTraceId());
    Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): testing it.
    EXPECT_TRUE(b.active());
  }
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TraceTest, DestructorFinishesUnfinishedSpans) {
  Tracer tracer;
  { Span s = tracer.StartSpan("raii", tracer.NewTraceId()); }
  EXPECT_EQ(tracer.size(), 1u);
  // Finish is idempotent: an explicit Finish before destruction records once.
  {
    Span s = tracer.StartSpan("explicit", tracer.NewTraceId());
    s.Finish();
    s.Finish();
  }
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(TraceTest, ExecContextHelpersThreadTheTracer) {
  Tracer tracer;
  ExecContext ctx;
  // Without a tracer the helper returns inert spans.
  EXPECT_FALSE(StartSpan(ctx, "nothing").active());

  ctx.tracer = &tracer;
  ctx.trace_id = tracer.NewTraceId();
  Span outer = StartSpan(ctx, "outer");
  const ExecContext inner_ctx = WithSpan(ctx, outer);
  EXPECT_EQ(inner_ctx.parent_span, outer.id());
  Span inner = StartSpan(inner_ctx, "inner");
  inner.Finish();
  outer.Finish();
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
}

TEST(TraceTest, ChromeTraceJsonGoldenWithInjectedClock) {
  // A fake clock makes ts/dur deterministic: spans see the clock at open
  // and at Finish, so the sequence below pins start=100, dur=150.
  int64_t now = 100;
  Tracer tracer([&now] {
    const int64_t t = now;
    now += 150;
    return t;
  });
  Span span = tracer.StartSpan("alpha", 0xab);
  span.SetAttr("phase", "one");
  span.Finish();
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("{\"traceEvents\":[{\"name\":\"alpha\",\"cat\":\"gputc\","
                      "\"ph\":\"X\",\"ts\":100,\"dur\":150,\"pid\":1,\"tid\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"trace_id\":\"00000000000000ab\","
                      "\"span_id\":1,\"parent_id\":0,\"phase\":\"one\"}}]}"),
            std::string::npos)
      << json;
}

// -- batch service integration ---------------------------------------------

BatchRequest GenRequest(int index) {
  BatchRequest request;
  request.id = std::to_string(index) + ":gen:er";
  request.source = "gen:er:seed=" + std::to_string(index);
  request.kind = BatchRequest::Kind::kGenerate;
  request.target = "er";
  request.params = {{"nodes", "200"},
                    {"edges", "600"},
                    {"seed", std::to_string(index)}};
  return request;
}

TEST(ObsServiceTest, EveryJournalLineCarriesAUniqueTraceIdWithASpanTree) {
  Tracer tracer;
  BatchServiceOptions options;
  options.jobs = 3;
  options.queue_depth = 8;
  options.preprocess.calibrate = false;
  options.tracer = &tracer;
  BatchService service(options);
  service.Start();
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) service.Submit(GenRequest(i));
  const BatchSummary summary = service.Finish();
  ASSERT_EQ(summary.reports.size(), static_cast<size_t>(kRequests));

  std::set<uint64_t> ids;
  for (const RequestReport& report : summary.reports) {
    EXPECT_NE(report.trace_id, 0u) << report.id;
    EXPECT_TRUE(ids.insert(report.trace_id).second)
        << "trace id reused by " << report.id;
    // The JSONL line carries the id and the stage-timing block.
    const std::string json = report.ToJson();
    EXPECT_NE(json.find("\"trace_id\":\"" + TraceIdHex(report.trace_id) + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"timings\":{\"queue_ms\":"), std::string::npos);
    EXPECT_NE(json.find("\"materialize_ms\":"), std::string::npos);
  }

  // Reconstruct each trace's span tree: one "request" root whose children
  // cover admit -> execute -> journal, with the executor's attempt (and the
  // pipeline stages under it) threaded below "execute".
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  for (const RequestReport& report : summary.reports) {
    std::vector<const SpanRecord*> mine;
    for (const SpanRecord& s : spans) {
      if (s.trace_id == report.trace_id) mine.push_back(&s);
    }
    ASSERT_FALSE(mine.empty()) << report.id;
    const SpanRecord* root = nullptr;
    std::set<std::string> child_names;
    std::map<uint64_t, const SpanRecord*> by_id;
    for (const SpanRecord* s : mine) by_id[s->span_id] = s;
    for (const SpanRecord* s : mine) {
      if (s->name == "request") {
        EXPECT_EQ(s->parent_id, 0u);
        root = s;
      }
    }
    ASSERT_NE(root, nullptr) << report.id;
    for (const SpanRecord* s : mine) {
      if (s->parent_id == root->span_id) child_names.insert(s->name);
    }
    EXPECT_EQ(child_names.count("admit"), 1u) << report.id;
    EXPECT_EQ(child_names.count("execute"), 1u) << report.id;
    EXPECT_EQ(child_names.count("journal"), 1u) << report.id;
    // Every span in the trace reaches the root by walking parents.
    for (const SpanRecord* s : mine) {
      const SpanRecord* cursor = s;
      int hops = 0;
      while (cursor->parent_id != 0 && hops++ < 64) {
        auto it = by_id.find(cursor->parent_id);
        ASSERT_NE(it, by_id.end())
            << report.id << ": span '" << s->name << "' has a dangling parent";
        cursor = it->second;
      }
      EXPECT_EQ(cursor->span_id, root->span_id)
          << report.id << ": span '" << s->name << "' not under the root";
    }
  }
}

}  // namespace
}  // namespace gputc
