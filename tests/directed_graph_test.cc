#include <gtest/gtest.h>

#include <numeric>

#include "direction/direction.h"
#include "graph/directed_graph.h"
#include "graph/generators.h"
#include "graph/permutation.h"

namespace gputc {
namespace {

TEST(DirectedGraphTest, FromRankOrientsEveryEdgeOnce) {
  const Graph g = CompleteGraph(5);
  const DirectedGraph d =
      DirectedGraph::FromRank(g, IdentityPermutation(5));
  EXPECT_EQ(d.num_edges(), g.num_edges());
  EdgeCount arcs = 0;
  for (VertexId v = 0; v < 5; ++v) arcs += d.out_degree(v);
  EXPECT_EQ(arcs, g.num_edges());
  // Identity rank == ID-based: vertex 0 points to everyone.
  EXPECT_EQ(d.out_degree(0), 4);
  EXPECT_EQ(d.out_degree(4), 0);
}

TEST(DirectedGraphTest, ReversedRankFlipsOrientation) {
  const Graph g = CompleteGraph(4);
  std::vector<VertexId> rank = {3, 2, 1, 0};
  const DirectedGraph d = DirectedGraph::FromRank(g, rank);
  EXPECT_EQ(d.out_degree(3), 3);
  EXPECT_EQ(d.out_degree(0), 0);
  EXPECT_TRUE(d.HasArc(3, 0));
  EXPECT_FALSE(d.HasArc(0, 3));
}

TEST(DirectedGraphTest, DuplicateRanksBreakTiesById) {
  const Graph g = CycleGraph(4);
  const std::vector<VertexId> all_equal(4, 0);
  const DirectedGraph d = DirectedGraph::FromRank(g, all_equal);
  EXPECT_EQ(d.num_edges(), 4);
  EXPECT_TRUE(d.HasArc(0, 1));
  EXPECT_FALSE(d.HasArc(1, 0));
  EXPECT_TRUE(HasNoDirectedTriangleCycle(g, d));
}

TEST(DirectedGraphTest, OutListsAreSorted) {
  const Graph g = GenerateErdosRenyi(60, 200, /*seed=*/2);
  const DirectedGraph d =
      DirectedGraph::FromRank(g, IdentityPermutation(60));
  for (VertexId v = 0; v < 60; ++v) {
    const auto nbrs = d.out_neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(DirectedGraphTest, AverageAndMaxOutDegree) {
  const Graph g = StarGraph(9);
  const DirectedGraph hub_first =
      DirectedGraph::FromRank(g, IdentityPermutation(9));
  EXPECT_EQ(hub_first.MaxOutDegree(), 8);
  EXPECT_DOUBLE_EQ(hub_first.AverageOutDegree(), 8.0 / 9.0);

  std::vector<VertexId> hub_last(9);
  std::iota(hub_last.begin(), hub_last.end(), VertexId{0});
  hub_last[0] = 8;
  hub_last[8] = 0;
  const DirectedGraph leaves_first = DirectedGraph::FromRank(g, hub_last);
  EXPECT_EQ(leaves_first.MaxOutDegree(), 1);
}

TEST(DirectedGraphTest, OutDegreesVectorMatchesAccessor) {
  const Graph g = GenerateErdosRenyi(40, 100, /*seed=*/8);
  const DirectedGraph d =
      DirectedGraph::FromRank(g, IdentityPermutation(40));
  const std::vector<EdgeCount> degs = d.OutDegrees();
  ASSERT_EQ(degs.size(), 40u);
  for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(degs[v], d.out_degree(v));
}

TEST(DirectedGraphTest, ApplyPermutationPreservesOrientation) {
  const Graph g = GenerateErdosRenyi(30, 80, /*seed=*/4);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  // Reverse the ids; arcs must keep pointing the same logical way.
  Permutation perm(30);
  for (VertexId v = 0; v < 30; ++v) perm[v] = 29 - v;
  const DirectedGraph relabeled = ApplyPermutation(d, perm);
  EXPECT_EQ(relabeled.num_edges(), d.num_edges());
  for (VertexId u = 0; u < 30; ++u) {
    for (VertexId v : d.out_neighbors(u)) {
      EXPECT_TRUE(relabeled.HasArc(perm[u], perm[v]));
      EXPECT_FALSE(relabeled.HasArc(perm[v], perm[u]));
    }
  }
}

TEST(DirectedGraphTest, FromPartsValidatesShape) {
  const DirectedGraph d =
      DirectedGraph::FromParts({0, 2, 2, 2}, {1, 2});
  EXPECT_EQ(d.num_vertices(), 3u);
  EXPECT_EQ(d.num_edges(), 2);
  EXPECT_EQ(d.out_degree(0), 2);
  EXPECT_TRUE(d.HasArc(0, 2));
}

}  // namespace
}  // namespace gputc
