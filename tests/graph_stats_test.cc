#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

namespace gputc {
namespace {

TEST(ConnectedComponentsTest, SingleComponent) {
  std::vector<int64_t> sizes;
  const auto comp = ConnectedComponents(CompleteGraph(10), &sizes);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 10);
  for (int64_t c : comp) EXPECT_EQ(c, 0);
}

TEST(ConnectedComponentsTest, MultipleComponentsAndIsolated) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(2, 3);
  list.Add(3, 4);
  list.set_num_vertices(7);  // 5, 6 isolated.
  std::vector<int64_t> sizes;
  const auto comp =
      ConnectedComponents(Graph::FromEdgeList(std::move(list)), &sizes);
  EXPECT_EQ(sizes.size(), 4u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[6]);
}

TEST(GraphStatsTest, EmptyGraph) {
  const GraphStats stats = ComputeGraphStats(Graph::FromEdgeList(EdgeList{}));
  EXPECT_EQ(stats.num_vertices, 0u);
  EXPECT_EQ(stats.num_components, 0);
}

TEST(GraphStatsTest, UniformGraphHasLowGini) {
  const GraphStats stats = ComputeGraphStats(CycleGraph(1000));
  EXPECT_DOUBLE_EQ(stats.average_degree, 2.0);
  EXPECT_EQ(stats.max_degree, 2);
  EXPECT_EQ(stats.median_degree, 2);
  EXPECT_NEAR(stats.degree_gini, 0.0, 1e-9);
  EXPECT_EQ(stats.num_components, 1);
}

TEST(GraphStatsTest, StarIsMaximallySkewed) {
  const GraphStats stats = ComputeGraphStats(StarGraph(1000));
  EXPECT_EQ(stats.max_degree, 999);
  EXPECT_EQ(stats.median_degree, 1);
  EXPECT_GT(stats.degree_gini, 0.45);
}

TEST(GraphStatsTest, PowerLawGammaRecovered) {
  // The MLE should land near the generating exponent.
  const Graph g =
      GeneratePowerLawConfiguration(30000, 2.3, 2, 3000, /*seed=*/7);
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_GT(stats.gamma_estimate, 1.9);
  EXPECT_LT(stats.gamma_estimate, 2.8);
  EXPECT_GT(stats.degree_gini, 0.2);
}

TEST(GraphStatsTest, RoadStandInVsSocialStandIn) {
  const GraphStats road = ComputeGraphStats(LoadDataset("road_central"));
  const GraphStats social = ComputeGraphStats(LoadDataset("gowalla"));
  // The skew statistics that drive the paper's preprocessing.
  EXPECT_LT(road.degree_gini, 0.2);
  EXPECT_GT(social.degree_gini, 0.4);
  EXPECT_LT(road.max_degree, 3 * static_cast<EdgeCount>(road.average_degree) + 4);
  EXPECT_GT(static_cast<double>(social.max_degree),
            20.0 * social.average_degree);
}

TEST(GraphStatsTest, ComponentsCounted) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(2, 3);
  list.set_num_vertices(6);
  const GraphStats stats =
      ComputeGraphStats(Graph::FromEdgeList(std::move(list)));
  EXPECT_EQ(stats.num_components, 4);
  EXPECT_EQ(stats.largest_component, 2);
  EXPECT_EQ(stats.isolated_vertices, 2);
}

TEST(GraphStatsTest, FormatMentionsKeyFields) {
  const std::string text =
      FormatGraphStats(ComputeGraphStats(CompleteGraph(6)));
  EXPECT_NE(text.find("vertices"), std::string::npos);
  EXPECT_NE(text.find("gini"), std::string::npos);
  EXPECT_NE(text.find("components"), std::string::npos);
}

}  // namespace
}  // namespace gputc
