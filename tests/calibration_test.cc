#include <gtest/gtest.h>

#include "order/calibration.h"
#include "sim/memory.h"

namespace gputc {
namespace {

TEST(CalibrationTest, ProducesPositiveLambda) {
  const CalibrationResult r =
      CalibrateResourceModel(DeviceSpec::TitanXpLike());
  EXPECT_GT(r.lambda, 0.0);
  EXPECT_FALSE(r.samples.empty());
}

TEST(CalibrationTest, PcGrowsWithListLength) {
  // Figure 8, right axis: the balance-point multiplier p_c grows with the
  // adjacency list length (long lists are further into memory-bound
  // territory).
  const CalibrationResult r =
      CalibrateResourceModel(DeviceSpec::TitanXpLike());
  ASSERT_GE(r.samples.size(), 8u);
  EXPECT_GT(r.samples.back().p_c, r.samples.front().p_c);
  for (size_t i = 1; i < r.samples.size(); ++i) {
    EXPECT_GE(r.samples[i].p_c, r.samples[i - 1].p_c - 1e-9);
  }
}

TEST(CalibrationTest, LinearFitIsTight) {
  // Figure 9: m vs p_c * c is well fitted by a line.
  const CalibrationResult r =
      CalibrateResourceModel(DeviceSpec::TitanXpLike());
  EXPECT_GT(r.fit.r_squared, 0.8);
}

TEST(CalibrationTest, SamplesCoverRequestedRange) {
  const CalibrationResult r =
      CalibrateResourceModel(DeviceSpec::TitanXpLike(), /*max_list_length=*/256);
  ASSERT_EQ(r.samples.size(), 9u);  // 1..256 in powers of two.
  EXPECT_EQ(r.samples.front().list_length, 1);
  EXPECT_EQ(r.samples.back().list_length, 256);
}

TEST(CalibrationTest, DeterministicAcrossCalls) {
  const CalibrationResult a =
      CalibrateResourceModel(DeviceSpec::TitanXpLike());
  const CalibrationResult b =
      CalibrateResourceModel(DeviceSpec::TitanXpLike());
  EXPECT_EQ(a.lambda, b.lambda);
}

TEST(CalibrationTest, RespondsToDeviceBalance) {
  // A device with faster memory should see smaller p_c at the long end.
  DeviceSpec fast_mem = DeviceSpec::TitanXpLike();
  fast_mem.mem_transactions_per_cycle = 8.0;
  DeviceSpec slow_mem = DeviceSpec::TitanXpLike();
  slow_mem.mem_transactions_per_cycle = 0.25;
  const double fast_pc =
      CalibrateResourceModel(fast_mem).samples.back().p_c;
  const double slow_pc =
      CalibrateResourceModel(slow_mem).samples.back().p_c;
  EXPECT_LT(fast_pc, slow_pc);
}

TEST(CalibrationTest, CalibratedModelUsesFittedLambda) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const CalibrationResult r = CalibrateResourceModel(spec);
  const ResourceModel model = CalibratedResourceModel(spec);
  EXPECT_DOUBLE_EQ(model.lambda(), r.lambda);
}

TEST(CalibrationTest, WorkloadsCalibrateSeparately) {
  // Section 5.3: the parameter determination is repeated per algorithm
  // family. The cooperative-warp pattern (TriCore) coalesces the top levels
  // of the shared probe tree, so it must measure as less memory-hungry than
  // lanes searching distinct lists (Hu / Gunrock).
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const CalibrationResult distinct = CalibrateResourceModel(
      spec, 1 << 20, SearchWorkload::kDistinctLists);
  const CalibrationResult cooperative = CalibrateResourceModel(
      spec, 1 << 20, SearchWorkload::kCooperativeWarp);
  EXPECT_GT(distinct.lambda, 0.0);
  EXPECT_GT(cooperative.lambda, 0.0);
  EXPECT_NE(distinct.lambda, cooperative.lambda);
  // At long lengths the cooperative warp needs fewer transactions per
  // search than distinct lanes.
  const BandwidthProfiler d_prof(spec, SearchWorkload::kDistinctLists);
  const BandwidthProfiler c_prof(spec, SearchWorkload::kCooperativeWarp);
  EXPECT_LT(c_prof.Measure(1 << 16).transactions_per_search,
            d_prof.Measure(1 << 16).transactions_per_search);
}

TEST(CalibrationTest, CooperativePcIsMonotoneToo) {
  const CalibrationResult r = CalibrateResourceModel(
      DeviceSpec::TitanXpLike(), 1 << 16, SearchWorkload::kCooperativeWarp);
  for (size_t i = 1; i < r.samples.size(); ++i) {
    EXPECT_GE(r.samples[i].p_c, r.samples[i - 1].p_c - 1e-9);
  }
}

}  // namespace
}  // namespace gputc
