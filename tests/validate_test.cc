#include "graph/validate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"

namespace gputc {
namespace {

bool HasKind(const ValidationReport& report, FindingKind kind) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [kind](const Finding& f) { return f.kind == kind; });
}

const Finding& Get(const ValidationReport& report, FindingKind kind) {
  for (const Finding& f : report.findings) {
    if (f.kind == kind) return f;
  }
  ADD_FAILURE() << "finding " << FindingKindName(kind) << " not present in: "
                << report.Summary();
  static const Finding kMissing{};
  return kMissing;
}

TEST(GraphDoctorTest, CleanEdgeListIsClean) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(0, 2);
  list.Add(1, 2);
  const ValidationReport report = GraphDoctor().Examine(list);
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_EQ(report.Summary(), "no defects found");
}

TEST(GraphDoctorTest, DetectsSelfLoops) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(2, 2);
  list.Add(3, 3);
  const ValidationReport report = GraphDoctor().Examine(list);
  const Finding& f = Get(report, FindingKind::kSelfLoop);
  EXPECT_EQ(f.count, 2);
  EXPECT_NE(f.detail.find("edge 1"), std::string::npos);
  EXPECT_NE(f.detail.find("(2, 2)"), std::string::npos);
  EXPECT_TRUE(FindingIsRepairable(FindingKind::kSelfLoop));
  EXPECT_FALSE(report.HasStructuralDamage());
}

TEST(GraphDoctorTest, DetectsDuplicatesIncludingReversed) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 0);  // Same undirected edge, reversed.
  list.Add(0, 1);  // Exact repeat.
  const ValidationReport report = GraphDoctor().Examine(list);
  EXPECT_EQ(Get(report, FindingKind::kDuplicateEdge).count, 2);
  EXPECT_TRUE(HasKind(report, FindingKind::kUnsortedEdges));
  EXPECT_FALSE(report.HasStructuralDamage());
  EXPECT_EQ(report.ToStatus().code(), StatusCode::kInvalidArgument);
}

TEST(GraphDoctorTest, DetectsEndpointBeyondDeclaredUniverse) {
  EdgeList list;
  list.Add(0, 1);
  // Tamper directly: the normal API grows the universe, a corrupt loader
  // might not.
  list.mutable_edges().push_back(Edge{0, 7});
  const ValidationReport report = GraphDoctor().Examine(list);
  const Finding& f = Get(report, FindingKind::kEndpointOutOfRange);
  EXPECT_EQ(f.count, 1);
  EXPECT_NE(f.detail.find("(0, 7)"), std::string::npos);
  EXPECT_TRUE(report.HasStructuralDamage());
  EXPECT_EQ(report.ToStatus().code(), StatusCode::kDataLoss);
}

TEST(GraphDoctorTest, CapsFlagOversizedEdgeLists) {
  GraphDoctor::Options options;
  options.max_edges = 2;
  const GraphDoctor doctor(options);
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 3);
  const ValidationReport report = doctor.Examine(list);
  EXPECT_TRUE(HasKind(report, FindingKind::kEdgeCountOverflow));
  EXPECT_TRUE(report.HasStructuralDamage());
}

TEST(GraphDoctorTest, CheckCountsRejectsHugeHeaders) {
  const GraphDoctor doctor;
  EXPECT_TRUE(doctor.CheckCounts(100, 100).ok());
  const Status huge_n = doctor.CheckCounts(1ull << 40, 10);
  EXPECT_EQ(huge_n.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(huge_n.message().find("vertex count"), std::string::npos);
  const Status huge_m = doctor.CheckCounts(10, 1ull << 40);
  EXPECT_EQ(huge_m.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(huge_m.message().find("edge count"), std::string::npos);
}

TEST(GraphDoctorTest, CheckCsrAcceptsRealGraph) {
  const Graph g = GenerateErdosRenyi(50, 120, /*seed=*/3);
  EXPECT_TRUE(GraphDoctor::CheckCsr(g.num_vertices(),
                                    static_cast<uint64_t>(g.num_edges()),
                                    g.offsets(), g.adjacency())
                  .ok());
}

TEST(GraphDoctorTest, CheckCsrRejectsNonMonotonicOffsets) {
  const std::vector<EdgeCount> offsets = {0, 3, 2, 4};
  const std::vector<VertexId> adj = {1, 2, 0, 0};
  const Status s = GraphDoctor::CheckCsr(3, 2, offsets, adj);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("not monotonic"), std::string::npos);
  EXPECT_NE(s.message().find("offsets[2]"), std::string::npos);
}

TEST(GraphDoctorTest, CheckCsrRejectsBadTotal) {
  const std::vector<EdgeCount> offsets = {0, 1, 2, 3};  // offsets[n] != 2m.
  const std::vector<VertexId> adj = {1, 0, 1};
  const Status s = GraphDoctor::CheckCsr(3, 2, offsets, adj);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("2*m"), std::string::npos);
}

TEST(GraphDoctorTest, CheckCsrRejectsOutOfRangeNeighbor) {
  const std::vector<EdgeCount> offsets = {0, 1, 2};
  const std::vector<VertexId> adj = {1, 9};
  const Status s = GraphDoctor::CheckCsr(2, 1, offsets, adj);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("adjacency[1]"), std::string::npos);
}

TEST(GraphDoctorTest, ExamineGraphCleanOnLibraryOutput) {
  const Graph g = GenerateRmat(8, 4, /*seed=*/5);
  const ValidationReport report = GraphDoctor().Examine(g);
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST(GraphDoctorTest, BuildGraphRejectPolicyFailsOnLoops) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 1);
  const StatusOr<Graph> g =
      GraphDoctor().BuildGraph(list, RepairPolicy::kReject);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(g.status().message().find("self-loop"), std::string::npos);
}

TEST(GraphDoctorTest, BuildGraphRepairPolicyNormalizes) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 0);  // Duplicate of (0, 1).
  list.Add(1, 1);  // Self loop.
  list.Add(1, 2);
  ValidationReport report;
  const StatusOr<Graph> g =
      GraphDoctor().BuildGraph(list, RepairPolicy::kRepair, &report);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 2);  // (0,1) and (1,2).
  EXPECT_TRUE(HasKind(report, FindingKind::kSelfLoop));
  EXPECT_TRUE(HasKind(report, FindingKind::kDuplicateEdge));
}

TEST(GraphDoctorTest, BuildGraphRepairCannotFixStructuralDamage) {
  EdgeList list;
  list.Add(0, 1);
  list.mutable_edges().push_back(Edge{0, 9});  // Beyond the universe.
  const StatusOr<Graph> g =
      GraphDoctor().BuildGraph(list, RepairPolicy::kRepair);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
}

TEST(GraphDoctorTest, BuildGraphCleanInputPassesRejectPolicy) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(0, 2);
  const StatusOr<Graph> g =
      GraphDoctor().BuildGraph(list, RepairPolicy::kReject);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(ValidationReportTest, SummaryNamesEveryFinding) {
  EdgeList list;
  list.Add(0, 0);
  list.Add(1, 2);
  list.Add(2, 1);
  const ValidationReport report = GraphDoctor().Examine(list);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("self-loop"), std::string::npos);
  EXPECT_NE(summary.find("duplicate-edge"), std::string::npos);
}

}  // namespace
}  // namespace gputc
