#include <gtest/gtest.h>

#include <algorithm>

#include "direction/cost_model.h"
#include "direction/direction.h"
#include "direction/peeling.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

class DirectionStrategyTest
    : public ::testing::TestWithParam<DirectionStrategy> {};

TEST_P(DirectionStrategyTest, RankIsAPermutation) {
  const Graph g = GeneratePowerLawConfiguration(2000, 2.1, 1, 200, 31);
  const auto rank = DirectionRank(g, GetParam());
  EXPECT_TRUE(IsPermutation(rank));
}

TEST_P(DirectionStrategyTest, OrientationHasNoDirectedTriangle) {
  const Graph g = GeneratePowerLawConfiguration(800, 2.0, 2, 100, 32);
  const DirectedGraph d = Orient(g, GetParam());
  EXPECT_TRUE(HasNoDirectedTriangleCycle(g, d));
}

TEST_P(DirectionStrategyTest, TriangleCountIsOrientationInvariant) {
  const Graph g = GenerateRmat(9, 6, 33);
  const int64_t expected = CountTrianglesNodeIterator(g);
  EXPECT_EQ(CountTrianglesDirected(Orient(g, GetParam())), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DirectionStrategyTest,
    ::testing::ValuesIn(AllDirectionStrategies()),
    [](const ::testing::TestParamInfo<DirectionStrategy>& info) {
      std::string name = ToString(info.param);
      std::erase(name, '-');
      return name;
    });

TEST(DirectionRankTest, IdBasedIsIdentity) {
  const Graph g = StarGraph(6);
  const auto rank = DirectionRank(g, DirectionStrategy::kIdBased);
  EXPECT_EQ(rank, IdentityPermutation(6));
}

TEST(DirectionRankTest, DegreeBasedDrainsHubs) {
  // Star: hub has max degree, so every edge points leaf -> hub.
  const Graph g = StarGraph(50);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  EXPECT_EQ(d.out_degree(0), 0);
  for (VertexId leaf = 1; leaf < 50; ++leaf) {
    EXPECT_EQ(d.out_degree(leaf), 1);
  }
}

TEST(DirectionCostTest, StarCosts) {
  const Graph g = StarGraph(50);
  // ID-based: hub 0 gets all 49 out-edges. d_avg = 49/50.
  const double id_cost = DirectionCost(Orient(g, DirectionStrategy::kIdBased));
  // Degree-based: perfectly flat (every vertex within 1 of d_avg).
  const double deg_cost =
      DirectionCost(Orient(g, DirectionStrategy::kDegreeBased));
  EXPECT_GT(id_cost, 10 * deg_cost);
}

TEST(DirectionCostTest, MatchesManualComputation) {
  // Path 0-1-2 oriented by id: out-degrees 1,1,0; d_avg = 2/3.
  const Graph g = PathGraph(3);
  const DirectedGraph d = Orient(g, DirectionStrategy::kIdBased);
  EXPECT_NEAR(DirectionCost(d), (1 - 2.0 / 3) * 2 + 2.0 / 3, 1e-12);
}

TEST(DirectionCostTest, ThresholdedCostOnlyCountsHubs) {
  const Graph g = StarGraph(100);
  const DirectedGraph d = Orient(g, DirectionStrategy::kIdBased);
  // Only the hub exceeds 2x average degree.
  const double hub_only = DirectionCostAboveThreshold(g, d, 2.0);
  EXPECT_NEAR(hub_only, 99.0 - 99.0 / 100.0, 1e-9);
  // Threshold 0 counts everything with degree > 0.
  EXPECT_GT(DirectionCostAboveThreshold(g, d, 0.0), hub_only);
}

TEST(ADirectionTest, CostBeatsOrMatchesDegreeOnSkewedGraphs) {
  for (const char* name : {"gowalla", "cit-patents", "kron-logn18"}) {
    const Graph g = LoadDataset(name);
    const double a_cost =
        DirectionCost(Orient(g, DirectionStrategy::kADirection));
    const double d_cost =
        DirectionCost(Orient(g, DirectionStrategy::kDegreeBased));
    const double id_cost =
        DirectionCost(Orient(g, DirectionStrategy::kIdBased));
    EXPECT_LE(a_cost, d_cost * 1.02) << name;
    EXPECT_LT(a_cost, id_cost) << name;
  }
}

TEST(ADirectionTest, PeelOrderCoversAllVertices) {
  const Graph g = GeneratePowerLawConfiguration(3000, 2.0, 1, 300, 35);
  const PeelingResult result = ADirectionPeel(g);
  EXPECT_EQ(result.peel_order.size(), 3000u);
  EXPECT_TRUE(IsPermutation(PermutationFromSequence(result.peel_order)));
  EXPECT_GT(result.rounds, 0);
  EXPECT_GT(result.peel_degree, 0);
}

TEST(ADirectionTest, NonCoreEdgesPointIntoCores) {
  // Lemma 4.1: an edge between a non-core vertex (d < d_avg) and a core
  // vertex must leave the non-core vertex. Star: every leaf is non-core.
  const Graph g = StarGraph(64);
  const DirectedGraph d = Orient(g, DirectionStrategy::kADirection);
  EXPECT_EQ(d.out_degree(0), 0);
}

TEST(ADirectionTest, HandlesEmptyAndTinyGraphs) {
  const PeelingResult empty = ADirectionPeel(Graph::FromEdgeList(EdgeList{}));
  EXPECT_TRUE(empty.peel_order.empty());

  const Graph single_edge = PathGraph(2);
  const PeelingResult r = ADirectionPeel(single_edge);
  EXPECT_EQ(r.peel_order.size(), 2u);
}

TEST(ADirectionTest, ThresholdGrowthSweepStaysValid) {
  const Graph g = GeneratePowerLawConfiguration(1000, 2.2, 1, 150, 36);
  for (double growth : {1.5, 2.0, 4.0}) {
    PeelingOptions options;
    options.threshold_growth = growth;
    const PeelingResult result = ADirectionPeel(g, options);
    EXPECT_EQ(result.peel_order.size(), 1000u);
    const DirectedGraph d = DirectedGraph::FromRank(
        g, PermutationFromSequence(result.peel_order));
    EXPECT_TRUE(HasNoDirectedTriangleCycle(g, d));
  }
}

TEST(ADirectionTest, FlattensOutDegreeDistribution) {
  const Graph g = LoadDataset("kron-logn18");
  const DirectedGraph a = Orient(g, DirectionStrategy::kADirection);
  const DirectedGraph id = Orient(g, DirectionStrategy::kIdBased);
  EXPECT_LT(a.MaxOutDegree(), id.MaxOutDegree());
}

}  // namespace
}  // namespace gputc
