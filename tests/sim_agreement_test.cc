#include <gtest/gtest.h>

#include <vector>

#include "sim/block_cost.h"
#include "sim/device.h"
#include "sim/warp_scheduler.h"
#include "util/random.h"
#include "util/stats.h"

namespace gputc {
namespace {

// The closed-form BlockCostModel is the workhorse; the event-driven
// WarpSchedulerSim is the reference. These tests check the two agree on
// ranking and correlate strongly, which is what the preprocessing
// conclusions rely on.

DeviceSpec Spec() { return DeviceSpec::TitanXpLike(); }

/// Builds matched inputs: per-warp (compute, transactions) pairs are fed to
/// both models.
struct MatchedBlock {
  std::vector<WarpTrace> traces;
  std::vector<ThreadWork> threads;
};

MatchedBlock MakeBlock(const DeviceSpec& spec, Rng* rng, double mem_bias,
                       double scale = 1.0) {
  MatchedBlock block;
  block.threads.resize(static_cast<size_t>(spec.threads_per_block()));
  for (int w = 0; w < spec.warps_per_block; ++w) {
    WarpTrace trace;
    double total_c = 0.0, total_m = 0.0;
    const int segments = 4;
    for (int s = 0; s < segments; ++s) {
      WarpSegment seg;
      seg.compute_cycles =
          scale * (1.0 + rng->NextDouble() * 20.0 * (1.0 - mem_bias));
      seg.mem_transactions = scale * rng->NextDouble() * 12.0 * mem_bias;
      total_c += seg.compute_cycles;
      total_m += seg.mem_transactions;
      trace.push_back(seg);
    }
    block.traces.push_back(trace);
    // Spread the warp's aggregate work evenly over its lanes for the
    // closed-form model (its warp-max then equals the trace's compute).
    for (int lane = 0; lane < spec.warp_size; ++lane) {
      ThreadWork& t =
          block.threads[static_cast<size_t>(w * spec.warp_size + lane)];
      t.compute_ops = total_c;
      t.mem_transactions = total_m / spec.warp_size;
    }
  }
  return block;
}

TEST(SimAgreementTest, ModelsCorrelateAcrossRandomBlocks) {
  const DeviceSpec spec = Spec();
  const WarpSchedulerSim reference(spec);
  Rng rng(77);
  std::vector<double> analytic, event_driven;
  for (int trial = 0; trial < 40; ++trial) {
    const double mem_bias = (trial % 5) / 4.0;
    // Spread block sizes over an order of magnitude: the models must track
    // both composition and volume.
    const double scale = 1.0 + (trial % 8);
    const MatchedBlock block = MakeBlock(spec, &rng, mem_bias, scale);
    analytic.push_back(PriceBlock(spec, block.threads).cycles);
    event_driven.push_back(reference.RunBlock(block.traces).cycles);
  }
  EXPECT_GT(PearsonCorrelation(analytic, event_driven), 0.8);
}

TEST(SimAgreementTest, BothModelsPreferMixedBlocks) {
  const DeviceSpec spec = Spec();
  const WarpSchedulerSim reference(spec);

  // Memory-only and compute-only warps vs mixed assignment, equal totals.
  auto mem_trace = [] {
    return WarpTrace{{2.0, 40.0}, {2.0, 40.0}};
  };
  auto comp_trace = [] {
    return WarpTrace{{60.0, 0.0}, {60.0, 0.0}};
  };
  std::vector<WarpTrace> segregated_a(8, mem_trace());
  std::vector<WarpTrace> segregated_b(8, comp_trace());
  std::vector<WarpTrace> mixed;
  for (int i = 0; i < 4; ++i) {
    mixed.push_back(mem_trace());
    mixed.push_back(comp_trace());
  }
  const double segregated = reference.RunBlock(segregated_a).cycles +
                            reference.RunBlock(segregated_b).cycles;
  const double mixed_total = 2.0 * reference.RunBlock(mixed).cycles;
  EXPECT_LT(mixed_total, segregated);
}

TEST(WarpSchedulerTest, EmptyAndTrivialTraces) {
  const WarpSchedulerSim sim(Spec());
  EXPECT_EQ(sim.RunBlock({}).cycles, 0.0);
  const ScheduleResult r = sim.RunBlock({WarpTrace{{10.0, 0.0}}});
  EXPECT_DOUBLE_EQ(r.cycles, 10.0);
  EXPECT_DOUBLE_EQ(r.compute_busy, 10.0);
}

TEST(WarpSchedulerTest, MemoryLatencyOnCriticalPath) {
  const DeviceSpec spec = Spec();
  const WarpSchedulerSim sim(spec);
  const ScheduleResult r = sim.RunBlock({WarpTrace{{0.0, 1.0}}});
  // One transaction: throughput time + latency.
  EXPECT_DOUBLE_EQ(r.cycles, 1.0 / spec.mem_transactions_per_cycle +
                                 spec.mem_latency_cycles);
}

TEST(WarpSchedulerTest, IndependentWarpsOverlapOnCompute) {
  DeviceSpec spec = Spec();
  spec.issue_width = 2.0;
  const WarpSchedulerSim sim(spec);
  // Four compute-only warps of 10 cycles on 2 pipelines: 20 cycles.
  const std::vector<WarpTrace> warps(4, WarpTrace{{10.0, 0.0}});
  EXPECT_DOUBLE_EQ(sim.RunBlock(warps).cycles, 20.0);
}

TEST(WarpSchedulerTest, DeterministicAcrossRuns) {
  const DeviceSpec spec = Spec();
  const WarpSchedulerSim sim(spec);
  Rng rng(5);
  MatchedBlock block = MakeBlock(spec, &rng, 0.5);
  const double first = sim.RunBlock(block.traces).cycles;
  const double second = sim.RunBlock(block.traces).cycles;
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace gputc
