#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "direction/direction.h"
#include "graph/datasets.h"
#include "graph/permutation.h"
#include "order/calibration.h"
#include "order/ordering.h"
#include "tc/cpu_counters.h"
#include "tc/registry.h"

namespace gputc {
namespace {

// The paper's usability claim: the preprocessing is calibrated per device
// and keeps helping when the device changes. These tests repeat the robust
// qualitative checks on a second simulated device.

class CrossDeviceTest : public ::testing::TestWithParam<DeviceSpec> {
 protected:
  Graph graph_ = LoadDataset("kron-logn18");
};

TEST_P(CrossDeviceTest, CountsStayExactEverywhere) {
  const DeviceSpec spec = GetParam();
  const int64_t expected = CountTrianglesForward(graph_);
  for (TcAlgorithm algorithm : PaperAlgorithms()) {
    EXPECT_EQ(RunTriangleCount(graph_, algorithm, spec).triangles, expected)
        << ToString(algorithm);
  }
}

TEST_P(CrossDeviceTest, IdDirectionRemainsWorstOnBspKernels) {
  const DeviceSpec spec = GetParam();
  for (TcAlgorithm algorithm : {TcAlgorithm::kHu, TcAlgorithm::kBisson}) {
    const double id =
        MakeCounter(algorithm)
            ->Count(Orient(graph_, DirectionStrategy::kIdBased), spec)
            .kernel.cycles;
    const double adir =
        MakeCounter(algorithm)
            ->Count(Orient(graph_, DirectionStrategy::kADirection), spec)
            .kernel.cycles;
    EXPECT_LT(adir, id) << ToString(algorithm);
  }
}

TEST_P(CrossDeviceTest, DegreeOrderRemainsWorstOrdering) {
  const DeviceSpec spec = GetParam();
  if (spec.num_sms < 8) {
    // D-order's damage comes through straggler blocks across many SMs; a
    // 2-SM debug device serializes everything and the effect (correctly)
    // vanishes into noise.
    GTEST_SKIP() << "too few SMs for the load-imbalance channel";
  }
  const DirectedGraph d = Orient(graph_, DirectionStrategy::kDegreeBased);
  const ResourceModel model = CalibratedResourceModel(spec);
  auto kernel_cycles = [&](OrderingStrategy ord) {
    const Permutation perm = ComputeOrdering(
        graph_, d, ord, model, AOrderOptions{spec.threads_per_block()});
    return MakeCounter(TcAlgorithm::kHu)
        ->Count(ApplyPermutation(d, perm), spec)
        .kernel.cycles;
  };
  const double a_order = kernel_cycles(OrderingStrategy::kAOrder);
  const double d_order = kernel_cycles(OrderingStrategy::kDegree);
  EXPECT_LT(a_order, d_order);
}

TEST_P(CrossDeviceTest, CalibrationAdaptsToDevice) {
  const DeviceSpec spec = GetParam();
  const CalibrationResult r = CalibrateResourceModel(spec);
  EXPECT_GT(r.lambda, 0.0);
  EXPECT_FALSE(r.samples.empty());
  // p_c stays monotone nondecreasing on every device.
  for (size_t i = 1; i < r.samples.size(); ++i) {
    EXPECT_GE(r.samples[i].p_c, r.samples[i - 1].p_c - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Devices, CrossDeviceTest,
    ::testing::Values(DeviceSpec::TitanXpLike(), DeviceSpec::MidrangeLike(),
                      DeviceSpec::Tiny()),
    [](const ::testing::TestParamInfo<DeviceSpec>& info) {
      switch (info.index) {
        case 0:
          return std::string("TitanXpLike");
        case 1:
          return std::string("MidrangeLike");
        default:
          return std::string("Tiny");
      }
    });

}  // namespace
}  // namespace gputc
