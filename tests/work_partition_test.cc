#include <gtest/gtest.h>

#include "direction/direction.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "tc/work_partition.h"

namespace gputc {
namespace {

TEST(WorkPartitionTest, RangesCoverAllArcsExactlyOnce) {
  const Graph g = GenerateErdosRenyi(500, 2000, 81);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const auto ranges = VertexBucketArcRanges(d, 64);
  EXPECT_EQ(ranges.size(), (500 + 63) / 64);
  int64_t covered = 0;
  int64_t prev_end = 0;
  for (const ArcRange& r : ranges) {
    EXPECT_EQ(r.begin, prev_end);
    EXPECT_GE(r.end, r.begin);
    covered += r.size();
    prev_end = r.end;
  }
  EXPECT_EQ(covered, d.num_edges());
}

TEST(WorkPartitionTest, BucketBoundariesFollowVertexIds) {
  const Graph g = StarGraph(10);  // Hub 0 with 9 leaves.
  const DirectedGraph d = Orient(g, DirectionStrategy::kIdBased);
  // ID orientation: all 9 arcs belong to vertex 0.
  const auto ranges = VertexBucketArcRanges(d, 5);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].size(), 9);  // Vertices 0..4 own every arc.
  EXPECT_EQ(ranges[1].size(), 0);  // Vertices 5..9 own none.
}

TEST(WorkPartitionTest, EmptyGraph) {
  const DirectedGraph d = DirectedGraph::FromParts({0}, {});
  EXPECT_TRUE(VertexBucketArcRanges(d, 8).empty());
}

TEST(WorkPartitionTest, ArcSourcesMatchCsr) {
  const Graph g = GeneratePowerLawConfiguration(300, 2.0, 1, 60, 82);
  const DirectedGraph d = Orient(g, DirectionStrategy::kADirection);
  const auto sources = ArcSources(d);
  ASSERT_EQ(sources.size(), static_cast<size_t>(d.num_edges()));
  // Cross-check: arc i with source u must satisfy
  // offsets[u] <= i < offsets[u+1], and adjacency[i] in out_neighbors(u).
  for (size_t i = 0; i < sources.size(); ++i) {
    const VertexId u = sources[i];
    EXPECT_GE(static_cast<EdgeCount>(i), d.offsets()[u]);
    EXPECT_LT(static_cast<EdgeCount>(i), d.offsets()[u + 1]);
  }
}

TEST(WorkPartitionTest, ReorderingMovesArcsBetweenBuckets) {
  // The mechanism the whole paper rides on: permuting vertices changes the
  // arc content of each fixed-id-range block.
  const Graph g = GeneratePowerLawConfiguration(256, 2.0, 1, 60, 83);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const auto before = VertexBucketArcRanges(d, 64);
  // Reverse the ids.
  Permutation perm(256);
  for (VertexId v = 0; v < 256; ++v) perm[v] = 255 - v;
  const DirectedGraph relabeled = ApplyPermutation(d, perm);
  const auto after = VertexBucketArcRanges(relabeled, 64);
  ASSERT_EQ(before.size(), after.size());
  // First bucket's load before == last bucket's load after (reversal), and
  // at least one bucket changed if loads are nonuniform.
  EXPECT_EQ(before.front().size(), after.back().size());
  EXPECT_EQ(before.back().size(), after.front().size());
}

}  // namespace
}  // namespace gputc
