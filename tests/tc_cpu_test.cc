#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

TEST(CpuCountersTest, KnownFixtureCounts) {
  EXPECT_EQ(CountTrianglesNodeIterator(CompleteGraph(5)), 10);
  EXPECT_EQ(CountTrianglesEdgeIterator(CompleteGraph(5)), 10);
  EXPECT_EQ(CountTrianglesForward(CompleteGraph(5)), 10);
  EXPECT_EQ(CountTrianglesParallel(CompleteGraph(5), 2), 10);

  EXPECT_EQ(CountTrianglesNodeIterator(WheelGraph(8)), 7);
  EXPECT_EQ(CountTrianglesEdgeIterator(CycleGraph(10)), 0);
}

TEST(CpuCountersTest, EmptyAndTinyGraphs) {
  const Graph empty = Graph::FromEdgeList(EdgeList{});
  EXPECT_EQ(CountTrianglesNodeIterator(empty), 0);
  EXPECT_EQ(CountTrianglesEdgeIterator(empty), 0);
  EXPECT_EQ(CountTrianglesForward(empty), 0);
  EXPECT_EQ(CountTrianglesParallel(PathGraph(2), 4), 0);
}

class CpuAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CpuAgreementTest, AllCountersAgreeOnRandomGraphs) {
  const uint64_t seed = GetParam();
  for (const Graph& g :
       {GenerateErdosRenyi(300, 2000, seed),
        GeneratePowerLawConfiguration(400, 2.0, 2, 80, seed),
        GenerateRmat(8, 8, seed), GenerateWattsStrogatz(300, 6, 0.2, seed)}) {
    const int64_t expected = CountTrianglesNodeIterator(g);
    EXPECT_EQ(CountTrianglesEdgeIterator(g), expected);
    EXPECT_EQ(CountTrianglesForward(g), expected);
    EXPECT_EQ(CountTrianglesParallel(g, 3), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuAgreementTest,
                         ::testing::Values(1, 7, 42, 123));

TEST(CpuCountersTest, DenseSmallWorldHasManyTriangles) {
  // Ring lattice k=6 without rewiring: each vertex participates in
  // triangles with its near neighbors.
  const Graph g = GenerateWattsStrogatz(500, 6, 0.0, 9);
  EXPECT_GT(CountTrianglesForward(g), 900);
}

TEST(CpuCountersTest, ParallelMatchesSerialOnDataset) {
  const Graph g = LoadDataset("email-Eucore");
  const int64_t serial = CountTrianglesForward(g);
  EXPECT_GT(serial, 0);
  EXPECT_EQ(CountTrianglesParallel(g, 4), serial);
  EXPECT_EQ(CountTrianglesParallel(g, 1), serial);
}

}  // namespace
}  // namespace gputc
