#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace gputc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, OkStatus());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = DataLossError("truncated header");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated header");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: truncated header");
}

TEST(StatusTest, EveryHelperMapsToItsCode) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrependsOutermostFirst) {
  const Status leaf = DataLossError("offsets[3] = 9 > offsets[4] = 7");
  const Status mid = leaf.WithContext("CSR offsets");
  const Status top = mid.WithContext("LoadBinary('g.bin')");
  EXPECT_EQ(top.code(), StatusCode::kDataLoss);
  EXPECT_EQ(top.message(),
            "LoadBinary('g.bin'): CSR offsets: offsets[3] = 9 > offsets[4] = "
            "7");
}

TEST(StatusTest, WithContextOnOkIsNoOp) {
  EXPECT_EQ(OkStatus().WithContext("ignored"), OkStatus());
}

TEST(StatusCodeNameTest, StableNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.has_value());  // optional-compatible accessor
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> v = NotFoundError("no such file");
  EXPECT_FALSE(v.ok());
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.status().message(), "no such file");
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ArrowAndMoveAccess) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
  const std::string moved = *std::move(v);
  EXPECT_EQ(moved, "hello");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("must be positive");
  return x;
}

Status UseMacros(int x, int* out) {
  GPUTC_ASSIGN_OR_RETURN(const int parsed, ParsePositive(x));
  GPUTC_RETURN_IF_ERROR(OkStatus());
  *out = parsed * 2;
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturnUnwraps) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  const Status s = UseMacros(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace gputc
