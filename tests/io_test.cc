#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace gputc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SnapTextTest, ParsesCommentsAndWhitespace) {
  std::istringstream in(
      "# comment line\n"
      "% another comment\n"
      "0\t1\n"
      "1 2\n"
      "\n"
      "2   0\n");
  const auto g = ReadSnapText(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 3);
}

TEST(SnapTextTest, RemapsSparseIdsDensely) {
  std::istringstream in("1000000 2000000\n2000000 5\n");
  const auto g = ReadSnapText(in);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(SnapTextTest, MalformedLineFails) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_FALSE(ReadSnapText(in).has_value());
}

TEST(SnapTextTest, RoundTrip) {
  const Graph g = GenerateErdosRenyi(80, 200, /*seed=*/1);
  std::ostringstream out;
  WriteSnapText(g, out);
  std::istringstream in(out.str());
  const auto h = ReadSnapText(in);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->num_vertices(), g.num_vertices());
  EXPECT_EQ(h->num_edges(), g.num_edges());
  // Writer emits edges in id order, so the reader's dense remap may relabel;
  // compare degree multisets.
  std::vector<EdgeCount> dg, dh;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    dg.push_back(g.degree(v));
    dh.push_back(h->degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

TEST(SnapTextTest, FileRoundTrip) {
  const Graph g = GenerateRmat(6, 4, /*seed=*/9);
  const std::string path = TempPath("snap_roundtrip.txt");
  ASSERT_TRUE(SaveSnapText(g, path));
  const auto h = LoadSnapText(path);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(SnapTextTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadSnapText("/nonexistent/path/graph.txt").has_value());
}

TEST(BinaryTest, RoundTripExact) {
  const Graph g = GenerateErdosRenyi(120, 500, /*seed=*/13);
  const std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveBinary(g, path));
  const auto h = LoadBinary(path);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->num_vertices(), g.num_vertices());
  EXPECT_EQ(h->num_edges(), g.num_edges());
  EXPECT_EQ(h->offsets(), g.offsets());
  EXPECT_EQ(h->adjacency(), g.adjacency());
  std::remove(path.c_str());
}

TEST(BinaryTest, RejectsWrongMagic) {
  const std::string path = TempPath("not_a_graph.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage data that is not a graph";
  }
  EXPECT_FALSE(LoadBinary(path).has_value());
  std::remove(path.c_str());
}

TEST(BinaryTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadBinary("/nonexistent/graph.bin").has_value());
}

// Property test: the v2 binary format round-trips bit-identically over a
// corpus spanning every generator family plus the degenerate shapes that
// historically break binary formats (empty, single vertex, edgeless,
// star hubs, zero-degree tails).
TEST(BinaryV2PropertyTest, RoundTripsBitIdenticallyOverCorpus) {
  std::vector<std::pair<std::string, Graph>> corpus;
  corpus.emplace_back("empty", Graph());
  corpus.emplace_back("single-vertex",
                      Graph::FromEdgeList(EdgeList(/*num_vertices=*/1)));
  corpus.emplace_back("edgeless-100",
                      Graph::FromEdgeList(EdgeList(/*num_vertices=*/100)));
  corpus.emplace_back("star-64", StarGraph(64));
  corpus.emplace_back("complete-8", CompleteGraph(8));
  corpus.emplace_back("cycle-10", CycleGraph(10));
  corpus.emplace_back("path-5", PathGraph(5));
  corpus.emplace_back("wheel-12", WheelGraph(12));
  corpus.emplace_back("bipartite-3x7", CompleteBipartiteGraph(3, 7));
  corpus.emplace_back("er", GenerateErdosRenyi(120, 500, /*seed=*/13));
  corpus.emplace_back("rmat", GenerateRmat(7, 8, /*seed=*/21));
  corpus.emplace_back("ws", GenerateWattsStrogatz(100, 4, 0.1, /*seed=*/5));
  corpus.emplace_back("powerlaw",
                      GeneratePowerLawConfiguration(200, 2.3, /*min_degree=*/1,
                                                    /*max_degree=*/30,
                                                    /*seed=*/11));
  corpus.emplace_back("ba", GenerateBarabasiAlbert(150, 3, /*seed=*/17));

  for (const auto& [name, g] : corpus) {
    const std::string path = TempPath("v2_prop_" + name + ".bin");
    ASSERT_TRUE(SaveBinaryDurable(g, path).ok()) << name;
    StatusOr<Graph> h = LoadBinary(path);
    ASSERT_TRUE(h.ok()) << name << ": " << h.status().ToString();
    EXPECT_EQ(h->num_vertices(), g.num_vertices()) << name;
    EXPECT_EQ(h->num_edges(), g.num_edges()) << name;
    EXPECT_EQ(h->offsets(), g.offsets()) << name;
    EXPECT_EQ(h->adjacency(), g.adjacency()) << name;
    // Saving the reloaded graph reproduces the file byte for byte — the
    // format has a single canonical encoding per graph.
    const std::string resaved = TempPath("v2_prop_" + name + "_resaved.bin");
    ASSERT_TRUE(SaveBinaryDurable(*h, resaved).ok()) << name;
    std::ifstream a(path, std::ios::binary), b(resaved, std::ios::binary);
    std::ostringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str()) << name;
    std::remove(path.c_str());
    std::remove(resaved.c_str());
  }
}

}  // namespace
}  // namespace gputc
