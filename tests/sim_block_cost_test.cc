#include <gtest/gtest.h>

#include <vector>

#include "sim/block_cost.h"
#include "sim/device.h"

namespace gputc {
namespace {

DeviceSpec Spec() { return DeviceSpec::TitanXpLike(); }

TEST(BlockCostTest, EmptyBlockCostsNothing) {
  BlockCostModel model(Spec());
  model.BeginBlock();
  const BlockCost cost = model.Finish();
  EXPECT_EQ(cost.cycles, 0.0);
  EXPECT_EQ(cost.supersteps, 0);
}

TEST(BlockCostTest, ComputeBoundBlock) {
  const DeviceSpec spec = Spec();
  std::vector<ThreadWork> threads(static_cast<size_t>(spec.threads_per_block()));
  for (auto& t : threads) t.compute_ops = 100.0;
  const BlockCost cost = PriceBlock(spec, threads);
  // 8 warps x 100 warp-max ops / issue_width 4 = 200 compute cycles; memory
  // is zero, so compute dominates.
  EXPECT_DOUBLE_EQ(cost.compute_cycles, 200.0);
  EXPECT_DOUBLE_EQ(cost.cycles, 200.0);
}

TEST(BlockCostTest, MemoryBoundBlock) {
  const DeviceSpec spec = Spec();
  std::vector<ThreadWork> threads(static_cast<size_t>(spec.threads_per_block()));
  for (auto& t : threads) t.mem_transactions = 10.0;
  const BlockCost cost = PriceBlock(spec, threads);
  EXPECT_DOUBLE_EQ(cost.memory_cycles,
                   256.0 * 10.0 / spec.mem_transactions_per_cycle);
  EXPECT_GE(cost.cycles, cost.memory_cycles);
}

TEST(BlockCostTest, SharedMemoryIsItsOwnPipeline) {
  const DeviceSpec spec = Spec();
  std::vector<ThreadWork> threads(static_cast<size_t>(spec.threads_per_block()));
  for (auto& t : threads) t.shared_transactions = 16.0;
  const BlockCost cost = PriceBlock(spec, threads);
  EXPECT_DOUBLE_EQ(cost.shared_cycles,
                   256.0 * 16.0 / spec.shared_transactions_per_cycle);
  EXPECT_DOUBLE_EQ(cost.memory_cycles, 0.0);
  EXPECT_GE(cost.cycles, cost.shared_cycles);
}

TEST(BlockCostTest, WarpDivergenceChargesWarpMax) {
  const DeviceSpec spec = Spec();
  // One lane does 320 ops, the rest idle: the warp still retires 320.
  std::vector<ThreadWork> one_lane(static_cast<size_t>(spec.threads_per_block()));
  one_lane[0].compute_ops = 320.0;

  // The same total work spread over a warp's 32 lanes: 10 each.
  std::vector<ThreadWork> spread(static_cast<size_t>(spec.threads_per_block()));
  for (int lane = 0; lane < spec.warp_size; ++lane) {
    spread[static_cast<size_t>(lane)].compute_ops = 10.0;
  }

  const BlockCost imbalanced = PriceBlock(spec, one_lane);
  const BlockCost balanced = PriceBlock(spec, spread);
  EXPECT_GT(imbalanced.cycles, 10.0 * balanced.cycles);
}

TEST(BlockCostTest, MixingResourcesBeatsSegregation) {
  const DeviceSpec spec = Spec();
  const int n = spec.threads_per_block();
  // Block A: all memory-heavy. Block B: all compute-heavy.
  std::vector<ThreadWork> mem_block(static_cast<size_t>(n));
  std::vector<ThreadWork> comp_block(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    mem_block[static_cast<size_t>(i)].mem_transactions = 8.0;
    comp_block[static_cast<size_t>(i)].compute_ops = 32.0;
  }
  const double segregated = PriceBlock(spec, mem_block).cycles +
                            PriceBlock(spec, comp_block).cycles;

  // Two mixed blocks with the same total work: half the lanes of each warp
  // memory-heavy, half compute-heavy.
  std::vector<ThreadWork> mixed(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      mixed[static_cast<size_t>(i)].mem_transactions = 8.0;
    } else {
      mixed[static_cast<size_t>(i)].compute_ops = 32.0;
    }
  }
  const double mixed_total = 2.0 * PriceBlock(spec, mixed).cycles;
  // The resource-balance effect the paper exploits: max(C,M) per block makes
  // diverse blocks strictly cheaper than segregated ones.
  EXPECT_LT(mixed_total, segregated);
}

TEST(BlockCostTest, SuperstepsChargeSyncAndMax) {
  const DeviceSpec spec = Spec();
  BlockCostModel model(spec);
  model.BeginBlock();
  ThreadWork w;
  w.compute_ops = 4.0;
  model.AddThreadWork(0, w);
  model.EndSuperstep();
  model.AddThreadWork(0, w);
  model.EndSuperstep();
  const BlockCost cost = model.Finish();
  EXPECT_EQ(cost.supersteps, 2);
  EXPECT_DOUBLE_EQ(cost.sync_cycles, 2.0 * spec.sync_cost_cycles);
  EXPECT_GT(cost.cycles, cost.sync_cycles);
}

TEST(BlockCostTest, BspImbalanceAcrossSuperstepsCostsMore) {
  const DeviceSpec spec = Spec();
  const size_t n = static_cast<size_t>(spec.threads_per_block());
  // Balanced: every thread does 16 ops in each of 2 supersteps.
  BlockCostModel balanced(spec);
  balanced.BeginBlock();
  for (int step = 0; step < 2; ++step) {
    for (size_t t = 0; t < n; ++t) {
      ThreadWork w;
      w.compute_ops = 16.0;
      balanced.AddThreadWork(static_cast<int>(t), w);
    }
    balanced.EndSuperstep();
  }
  // Imbalanced: same total, but one straggler lane per warp does 32x work.
  BlockCostModel imbalanced(spec);
  imbalanced.BeginBlock();
  for (int step = 0; step < 2; ++step) {
    for (size_t t = 0; t < n; ++t) {
      ThreadWork w;
      w.compute_ops = (t % 32 == 0) ? 512.0 : 0.0;
      imbalanced.AddThreadWork(static_cast<int>(t), w);
    }
    imbalanced.EndSuperstep();
  }
  EXPECT_GT(imbalanced.Finish().cycles, balanced.Finish().cycles);
}

TEST(BlockCostTest, FinishResetsState) {
  const DeviceSpec spec = Spec();
  BlockCostModel model(spec);
  model.BeginBlock();
  ThreadWork w;
  w.compute_ops = 50.0;
  model.AddThreadWork(0, w);
  const BlockCost first = model.Finish();
  EXPECT_GT(first.cycles, 0.0);
  model.BeginBlock();
  const BlockCost second = model.Finish();
  EXPECT_EQ(second.cycles, 0.0);
}

TEST(BlockCostDeathTest, ThreadIndexOutOfRange) {
  BlockCostModel model(Spec());
  model.BeginBlock();
  ThreadWork w;
  EXPECT_DEATH(model.AddThreadWork(100000, w), "thread_idx");
}

}  // namespace
}  // namespace gputc
