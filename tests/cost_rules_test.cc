#include <gtest/gtest.h>

#include "sim/memory.h"
#include "tc/cost_rules.h"

namespace gputc {
namespace {

DeviceSpec Spec() { return DeviceSpec::TitanXpLike(); }

TEST(CostRulesTest, BinarySearchGlobalShape) {
  const DeviceSpec spec = Spec();
  const ThreadWork short_list = BinarySearchGlobal(8, spec);
  const ThreadWork long_list = BinarySearchGlobal(1 << 16, spec);
  EXPECT_GT(long_list.compute_ops, short_list.compute_ops);
  EXPECT_GT(long_list.mem_transactions, short_list.mem_transactions);
  EXPECT_EQ(short_list.shared_transactions, 0.0);
  EXPECT_EQ(BinarySearchGlobal(0, spec).compute_ops, 0.0);
}

TEST(CostRulesTest, SharedSearchUsesSharedPipeline) {
  const ThreadWork w = BinarySearchShared(1024, Spec());
  EXPECT_GT(w.shared_transactions, 0.0);
  EXPECT_EQ(w.mem_transactions, 0.0);
  EXPECT_GT(w.compute_ops, 0.0);
}

TEST(CostRulesTest, BatchSearchCappedByListSegments) {
  const DeviceSpec spec = Spec();
  // 1000 keys into a 64-element list (2 segments): transactions must not
  // exceed the list's segment count, however many keys are searched.
  const ThreadWork w = BinarySearchBatch(1000, 64, /*shared=*/false, spec);
  EXPECT_LE(w.mem_transactions, 2.0);
  EXPECT_DOUBLE_EQ(w.compute_ops, 1000.0 * ProbesForBinarySearch(64));
}

TEST(CostRulesTest, BatchSearchSmallKeyCountsPayPerSearch) {
  const DeviceSpec spec = Spec();
  // 2 keys into a large list: per-search cold misses, not the segment cap.
  const int64_t len = 1 << 15;
  const ThreadWork w = BinarySearchBatch(2, len, /*shared=*/false, spec);
  EXPECT_DOUBLE_EQ(w.mem_transactions,
                   2.0 * static_cast<double>(
                             ThreadBinarySearchTransactions(len, spec)));
}

TEST(CostRulesTest, BatchSearchSharedFlag) {
  const DeviceSpec spec = Spec();
  const ThreadWork global = BinarySearchBatch(10, 1000, false, spec);
  const ThreadWork shared = BinarySearchBatch(10, 1000, true, spec);
  EXPECT_EQ(global.shared_transactions, 0.0);
  EXPECT_EQ(shared.mem_transactions, 0.0);
  EXPECT_DOUBLE_EQ(global.mem_transactions, shared.shared_transactions);
  EXPECT_DOUBLE_EQ(global.compute_ops, shared.compute_ops);
}

TEST(CostRulesTest, WarpSearchLaneShareDividesTransactions) {
  const DeviceSpec spec = Spec();
  const ThreadWork full = WarpSearchLaneShare(1 << 12, 32, spec);
  EXPECT_NEAR(full.mem_transactions * 32.0,
              static_cast<double>(
                  WarpSharedListSearchTransactions(1 << 12, 32, spec)),
              1e-9);
  EXPECT_EQ(WarpSearchLaneShare(100, 0, spec).compute_ops, 0.0);
}

TEST(CostRulesTest, SequentialScanCoalesces) {
  const DeviceSpec spec = Spec();
  const ThreadWork w = SequentialScan(100, spec);
  EXPECT_DOUBLE_EQ(w.compute_ops, 100.0);
  // ceil(100 / 32) = 4 transactions.
  EXPECT_DOUBLE_EQ(w.mem_transactions, 4.0);
  EXPECT_EQ(SequentialScan(0, spec).mem_transactions, 0.0);
}

TEST(CostRulesTest, CoalescedLoadSharesAcrossLanes) {
  const DeviceSpec spec = Spec();
  const ThreadWork w = CoalescedLoadLaneShare(320, 32, spec);
  EXPECT_DOUBLE_EQ(w.compute_ops, 10.0);
  EXPECT_DOUBLE_EQ(w.mem_transactions, 10.0 / 32.0);
}

TEST(CostRulesTest, SortMergePaysDivergence) {
  const DeviceSpec spec = Spec();
  const ThreadWork w = SortMerge(50, 50, spec);
  EXPECT_DOUBLE_EQ(w.compute_ops, 100.0 * spec.simt_divergence_penalty);
  EXPECT_DOUBLE_EQ(w.mem_transactions, 4.0);  // 2 + 2 segments.
}

TEST(CostRulesTest, BitmapAccessIsScattered) {
  const ThreadWork w = BitmapAccess(Spec());
  EXPECT_DOUBLE_EQ(w.mem_transactions, 1.0);
  EXPECT_DOUBLE_EQ(w.compute_ops, 1.0);
}

TEST(CostRulesTest, ThreadWorkAccumulates) {
  ThreadWork a{1.0, 2.0, 3.0};
  const ThreadWork b{10.0, 20.0, 30.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.compute_ops, 11.0);
  EXPECT_DOUBLE_EQ(a.mem_transactions, 22.0);
  EXPECT_DOUBLE_EQ(a.shared_transactions, 33.0);
}

}  // namespace
}  // namespace gputc
