#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

TEST(DatasetsTest, RegistryIsPopulated) {
  const auto names = DatasetNames();
  EXPECT_GE(names.size(), 15u);
  for (const auto& name : names) {
    EXPECT_TRUE(HasDataset(name));
    const DatasetSpec spec = GetDatasetSpec(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.family.empty());
    EXPECT_FALSE(spec.provenance.empty());
  }
  EXPECT_FALSE(HasDataset("no-such-dataset"));
}

TEST(DatasetsTest, PaperTableNamesPresent) {
  for (const char* name :
       {"email-Eucore", "email-Euall", "gowalla", "road_central", "soc-pokec",
        "soc-LJ", "com-orkut", "com-lj", "cit-patents", "wiki-topcats",
        "kron-logn18", "kron-logn21", "twitter_rv"}) {
    EXPECT_TRUE(HasDataset(name)) << name;
  }
}

class DatasetLoadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetLoadTest, LoadsAndIsDeterministic) {
  const Graph a = LoadDataset(GetParam());
  EXPECT_GT(a.num_vertices(), 0u);
  EXPECT_GT(a.num_edges(), 0);
  const Graph b = LoadDataset(GetParam());
  EXPECT_EQ(a.adjacency(), b.adjacency());
  EXPECT_EQ(a.offsets(), b.offsets());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetLoadTest,
    ::testing::Values("email-Eucore", "gowalla", "road_central",
                      "cit-patents", "kron-logn18", "twitter_rv"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '_') c = 'X';
      }
      return name;
    });

TEST(DatasetsTest, FamiliesHaveExpectedShape) {
  // Power-law stand-ins are skewed; the road stand-in is near-uniform.
  const Graph social = LoadDataset("gowalla");
  EXPECT_GT(static_cast<double>(social.MaxDegree()),
            20 * social.AverageDegree());
  const Graph road = LoadDataset("road_central");
  EXPECT_LT(static_cast<double>(road.MaxDegree()), 4 * road.AverageDegree());
}

TEST(DatasetsTest, SocialStandInsHaveTriangles) {
  EXPECT_GT(CountTrianglesForward(LoadDataset("email-Eucore")), 1000);
  EXPECT_GT(CountTrianglesForward(LoadDataset("kron-logn18")), 1000);
}

TEST(DatasetsDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(LoadDataset("definitely-missing"), "unknown dataset");
  EXPECT_DEATH(GetDatasetSpec("definitely-missing"), "unknown dataset");
}

}  // namespace
}  // namespace gputc
