#include <gtest/gtest.h>

#include <algorithm>

#include "core/preprocess.h"
#include "direction/cost_model.h"
#include "direction/direction.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "order/calibration.h"
#include "order/ordering.h"
#include "tc/fox.h"
#include "tc/registry.h"

namespace gputc {
namespace {

// Integration tests for the paper's qualitative claims: the preprocessing
// must move simulated kernel time in the direction the paper reports.

double KernelCycles(TcAlgorithm algorithm, const DirectedGraph& g,
                    const DeviceSpec& spec) {
  return MakeCounter(algorithm)->Count(g, spec).kernel.cycles;
}

DirectedGraph OrientAndOrder(const Graph& g, DirectionStrategy dir,
                             OrderingStrategy ord, const DeviceSpec& spec) {
  const DirectedGraph d = Orient(g, dir);
  const ResourceModel model = CalibratedResourceModel(spec);
  const Permutation perm =
      ComputeOrdering(g, d, ord, model, AOrderOptions{spec.threads_per_block()});
  return ApplyPermutation(d, perm);
}

class SkewedGraphTest : public ::testing::Test {
 protected:
  DeviceSpec spec_ = DeviceSpec::TitanXpLike();
  Graph graph_ = LoadDataset("kron-logn18");
};

TEST_F(SkewedGraphTest, ADirectionBeatsIdBasedOnHu) {
  // Figure 12's headline: A-direction and D-direction both clearly beat
  // ID-based on BSP algorithms; A-direction is at least competitive with
  // D-direction.
  const double id = KernelCycles(
      TcAlgorithm::kHu, Orient(graph_, DirectionStrategy::kIdBased), spec_);
  const double deg = KernelCycles(
      TcAlgorithm::kHu, Orient(graph_, DirectionStrategy::kDegreeBased),
      spec_);
  const double adir = KernelCycles(
      TcAlgorithm::kHu, Orient(graph_, DirectionStrategy::kADirection), spec_);
  EXPECT_LT(deg, id);
  EXPECT_LT(adir, id);
  EXPECT_LT(adir, deg * 1.05);
}

TEST_F(SkewedGraphTest, ADirectionBeatsIdBasedOnBisson) {
  // Figure 13.
  const double id = KernelCycles(
      TcAlgorithm::kBisson, Orient(graph_, DirectionStrategy::kIdBased),
      spec_);
  const double adir =
      KernelCycles(TcAlgorithm::kBisson,
                   Orient(graph_, DirectionStrategy::kADirection), spec_);
  EXPECT_LT(adir, id);
}

TEST_F(SkewedGraphTest, AOrderBeatsDegreeOrderOnHu) {
  // Table 5: D-order is the worst ordering, A-order the best.
  const double a_order =
      KernelCycles(TcAlgorithm::kHu,
                   OrientAndOrder(graph_, DirectionStrategy::kDegreeBased,
                                  OrderingStrategy::kAOrder, spec_),
                   spec_);
  const double d_order =
      KernelCycles(TcAlgorithm::kHu,
                   OrientAndOrder(graph_, DirectionStrategy::kDegreeBased,
                                  OrderingStrategy::kDegree, spec_),
                   spec_);
  EXPECT_LT(a_order, d_order);
}

TEST_F(SkewedGraphTest, AOrderAtLeastMatchesOriginalOnTriCore) {
  // Table 6: A-order speeds up TriCore relative to the original order.
  const double original =
      KernelCycles(TcAlgorithm::kTriCore,
                   OrientAndOrder(graph_, DirectionStrategy::kDegreeBased,
                                  OrderingStrategy::kOriginal, spec_),
                   spec_);
  const double a_order =
      KernelCycles(TcAlgorithm::kTriCore,
                   OrientAndOrder(graph_, DirectionStrategy::kDegreeBased,
                                  OrderingStrategy::kAOrder, spec_),
                   spec_);
  EXPECT_LT(a_order, original * 1.02);
}

TEST_F(SkewedGraphTest, BinarySearchBeatsSortMergeOnGunrock) {
  // Figure 10 on skewed graphs.
  const DirectedGraph d = Orient(graph_, DirectionStrategy::kDegreeBased);
  const double bs = KernelCycles(TcAlgorithm::kGunrockBinarySearch, d, spec_);
  const double sm = KernelCycles(TcAlgorithm::kGunrockSortMerge, d, spec_);
  EXPECT_LT(bs, sm);
}

TEST_F(SkewedGraphTest, EdgeAOrderHelpsFox) {
  // Figure 15.
  const DirectedGraph d = Orient(graph_, DirectionStrategy::kDegreeBased);
  const ResourceModel model = CalibratedResourceModel(spec_);
  const FoxCounter fox;
  const double original = fox.Count(d, spec_).kernel.cycles;
  const std::vector<int64_t> order = fox.AOrderedEdgeOrder(d, model, spec_);
  const double a_order =
      fox.CountWithEdgeOrder(d, spec_, order).kernel.cycles;
  EXPECT_LT(a_order, original * 1.02);
}

TEST(CombinedEffectTest, CombinationAtLeastMatchesSingles) {
  // Figure 16: A-direction + A-order together never lose badly to either
  // alone on Hu's algorithm. A small slack is allowed against the better
  // single: the two orientations produce slightly different wedge totals,
  // so a few percent either way is noise, while a real regression (say 2x)
  // would trip this.
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = LoadDataset("gowalla");
  const double combined = KernelCycles(
      TcAlgorithm::kHu,
      OrientAndOrder(g, DirectionStrategy::kADirection,
                     OrderingStrategy::kAOrder, spec),
      spec);
  const double direction_only = KernelCycles(
      TcAlgorithm::kHu,
      OrientAndOrder(g, DirectionStrategy::kADirection,
                     OrderingStrategy::kOriginal, spec),
      spec);
  const double order_only = KernelCycles(
      TcAlgorithm::kHu,
      OrientAndOrder(g, DirectionStrategy::kDegreeBased,
                     OrderingStrategy::kAOrder, spec),
      spec);
  EXPECT_LT(combined, direction_only * 1.12);
  EXPECT_LT(combined, order_only * 1.12);
}

TEST(ImbalanceCouplingTest, LowerEq1CostLowersBspKernelTime) {
  // The analytic model (Eq. 1) and the simulator must agree in sign: across
  // direction strategies, kernel cycles on Hu rise with the imbalance cost.
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = LoadDataset("cit-patents");
  std::vector<std::pair<double, double>> points;  // (cost, cycles).
  for (DirectionStrategy s :
       {DirectionStrategy::kIdBased, DirectionStrategy::kDegreeBased,
        DirectionStrategy::kADirection}) {
    const DirectedGraph d = Orient(g, s);
    points.emplace_back(DirectionCost(d),
                        KernelCycles(TcAlgorithm::kHu, d, spec));
  }
  // The strategy with the lowest Eq. 1 cost must not have the highest
  // kernel time, and vice versa.
  auto by_cost = std::minmax_element(
      points.begin(), points.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_LE(by_cost.first->second, by_cost.second->second);
}

}  // namespace
}  // namespace gputc
