// Tests for the crash-safe file primitives: CRC32C against known vectors,
// atomic whole-file replacement, and the append-only segment log including
// torn-tail truncation and mid-file corruption handling.

#include "util/durable_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace gputc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class DurableFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Path(const std::string& name) {
    const std::string p = TempPath(name);
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

// -- CRC32C -----------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 appendix / universal CRC32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes, another standard vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainsPartialComputations) {
  const std::string data = "the quick brown fox";
  const uint32_t whole = Crc32c(data.data(), data.size());
  const uint32_t chained =
      Crc32c(data.data() + 7, data.size() - 7, Crc32c(data.data(), 7));
  EXPECT_EQ(whole, chained);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data = "payload under test";
  const uint32_t before = Crc32c(data);
  data[5] ^= 0x01;
  EXPECT_NE(before, Crc32c(data));
}

// -- atomic whole-file replacement ------------------------------------------

TEST_F(DurableFileTest, WriteFileAtomicCreatesAndReplaces) {
  const std::string path = Path("atomic.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "first\n").ok());
  EXPECT_EQ(Slurp(path), "first\n");
  ASSERT_TRUE(WriteFileAtomic(path, "second\n").ok());
  EXPECT_EQ(Slurp(path), "second\n");
}

TEST_F(DurableFileTest, AbortLeavesTargetUntouched) {
  const std::string path = Path("aborted.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "keep me").ok());
  StatusOr<AtomicFileWriter> writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("discard me").ok());
  writer->Abort();
  EXPECT_EQ(Slurp(path), "keep me");
}

TEST_F(DurableFileTest, DroppedWriterLeavesTargetUntouched) {
  const std::string path = Path("dropped.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "keep me").ok());
  {
    StatusOr<AtomicFileWriter> writer = AtomicFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("never committed").ok());
    // Destructor without Commit must clean up the temp file.
  }
  EXPECT_EQ(Slurp(path), "keep me");
}

TEST_F(DurableFileTest, CreateInMissingDirectoryFails) {
  StatusOr<AtomicFileWriter> writer =
      AtomicFileWriter::Create(TempPath("no/such/dir/file.txt"));
  ASSERT_FALSE(writer.ok());
  EXPECT_NE(writer.status().message().find("no/such/dir"), std::string::npos);
}

// -- segment log ------------------------------------------------------------

TEST_F(DurableFileTest, SegmentRoundTripsRecords) {
  const std::string path = Path("seg.log");
  const std::vector<std::string> records = {"alpha", "b", "gamma gamma",
                                            std::string(1000, 'x')};
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const std::string& r : records) ASSERT_TRUE(writer->Append(r).ok());
  }
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, records);
  EXPECT_EQ(scan->dropped_bytes, 0u);
}

TEST_F(DurableFileTest, EmptyRecordIsRejected) {
  // An empty record's frame would be eight zero bytes — the same thing a
  // zero-filled crash tail reads back as — so the writer refuses it rather
  // than produce a record the scanner must treat as end-of-log.
  const std::string path = Path("empty.log");
  StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  const Status appended = writer->Append("");
  ASSERT_FALSE(appended.ok());
  EXPECT_EQ(appended.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer->Append("real record").ok());
}

TEST_F(DurableFileTest, ZeroFilledTailIsDroppedNotTrusted) {
  // Post-crash state on ext4/XFS: the file length was extended but the data
  // blocks never hit disk, so the tail reads back as zeros. The scan must
  // stop at the zero header instead of decoding an endless run of "valid"
  // empty records.
  const std::string path = Path("zerotail.log");
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("survivor one").ok());
    ASSERT_TRUE(writer->Append("survivor two").ok());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const std::string zeros(128, '\0');
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->dropped_bytes, 128u);
  // Open truncates the zero tail and appends continue from the verified
  // prefix, exactly as with a torn record.
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer->recovered().dropped_bytes, 128u);
    ASSERT_TRUE(writer->Append("after recovery").ok());
  }
  scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[2], "after recovery");
  EXPECT_EQ(scan->dropped_bytes, 0u);
}

TEST_F(DurableFileTest, ConcurrentAppendsDoNotInterleaveFrames) {
  // A frame is written in more than one write(2); without serialization,
  // appenders on different threads interleave mid-frame and every record
  // after the interleave point is silently dropped by recovery.
  const std::string path = Path("concurrent.log");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&writer, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string payload =
              "thread " + std::to_string(t) + " record " + std::to_string(i) +
              " " + std::string(static_cast<size_t>(1 + (i * 7) % 40), 'p');
          ASSERT_TRUE(writer->Append(payload).ok());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(scan->dropped_bytes, 0u);
}

TEST_F(DurableFileTest, MissingSegmentIsNotFound) {
  StatusOr<SegmentScan> scan = ScanSegment(TempPath("no_such_segment.log"));
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kNotFound);
}

TEST_F(DurableFileTest, TornTailIsDroppedNotTrusted) {
  const std::string path = Path("torn.log");
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("intact one").ok());
    ASSERT_TRUE(writer->Append("intact two").ok());
  }
  const std::string full = Slurp(path);
  // Tear the last record mid-payload, as a crash mid-append would.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() - 5));
  }
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0], "intact one");
  EXPECT_GT(scan->dropped_bytes, 0u);
}

TEST_F(DurableFileTest, OpenTruncatesTornTailAndAppendsAfterIt) {
  const std::string path = Path("recover.log");
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("survivor").ok());
    ASSERT_TRUE(writer->Append("victim").ok());
  }
  const std::string full = Slurp(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() - 3));
  }
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_EQ(writer->recovered().records.size(), 1u);
    EXPECT_GT(writer->recovered().dropped_bytes, 0u);
    ASSERT_TRUE(writer->Append("appended after recovery").ok());
  }
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0], "survivor");
  EXPECT_EQ(scan->records[1], "appended after recovery");
  EXPECT_EQ(scan->dropped_bytes, 0u);
}

TEST_F(DurableFileTest, CorruptPayloadStopsTheScan) {
  const std::string path = Path("bitrot.log");
  {
    StatusOr<SegmentWriter> writer = SegmentWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("good record").ok());
    ASSERT_TRUE(writer->Append("soon to rot").ok());
    ASSERT_TRUE(writer->Append("unreachable").ok());
  }
  std::string bytes = Slurp(path);
  // Flip one bit inside the second record's payload. Frames are
  // 8 bytes of header + payload each.
  const size_t second_payload = 8 + std::string("good record").size() + 8 + 2;
  ASSERT_LT(second_payload, bytes.size());
  bytes[second_payload] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  // Nothing after the first bad frame is trusted — a scan cannot tell
  // bit rot from a tear, and resynchronizing past garbage risks framing
  // on attacker-controlled bytes.
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0], "good record");
  EXPECT_GT(scan->dropped_bytes, 0u);
}

TEST_F(DurableFileTest, GarbageLengthFieldDoesNotAllocate) {
  const std::string path = Path("hugelen.log");
  {
    std::ofstream out(path, std::ios::binary);
    const uint32_t huge_len = 0xFFFFFFFFu;
    const uint32_t crc = 0;
    out.write(reinterpret_cast<const char*>(&huge_len), 4);
    out.write(reinterpret_cast<const char*>(&crc), 4);
    out << "tiny";
  }
  StatusOr<SegmentScan> scan = ScanSegment(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_GT(scan->dropped_bytes, 0u);
}

// -- line log ---------------------------------------------------------------

TEST_F(DurableFileTest, LineLogWritesLinesAndTruncatesOnOpen) {
  const std::string path = Path("lines.jsonl");
  {
    StatusOr<LineLog> log = LineLog::OpenTrunc(path, /*fsync_each=*/true);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->WriteLine("{\"a\":1}").ok());
    ASSERT_TRUE(log->WriteLine("{\"b\":2}").ok());
  }
  EXPECT_EQ(Slurp(path), "{\"a\":1}\n{\"b\":2}\n");
  {
    StatusOr<LineLog> log = LineLog::OpenTrunc(path, /*fsync_each=*/false);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->WriteLine("{\"c\":3}").ok());
  }
  EXPECT_EQ(Slurp(path), "{\"c\":3}\n");
}

}  // namespace
}  // namespace gputc
