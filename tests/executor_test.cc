#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/pipeline.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "tc/cpu_counters.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

/// The fail-point site each simulated counter injects at its entry.
std::string CounterSite(TcAlgorithm algorithm) {
  switch (algorithm) {
    case TcAlgorithm::kGunrockBinarySearch:
    case TcAlgorithm::kGunrockSortMerge:
      return "tc.gunrock";
    case TcAlgorithm::kTriCore:
      return "tc.tricore";
    case TcAlgorithm::kFox:
      return "tc.fox";
    case TcAlgorithm::kBisson:
      return "tc.bisson";
    case TcAlgorithm::kHu:
      return "tc.hu";
    case TcAlgorithm::kPolak:
      return "tc.polak";
  }
  return "tc.unknown";
}

/// Every test wipes the registry on entry and exit so an ambient
/// GPUTC_FAILPOINTS (or a sibling test) cannot perturb its schedule.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().Reset(); }
  void TearDown() override { FailPointRegistry::Instance().Reset(); }

  static std::vector<FallbackStage> GpuThenCpu(TcAlgorithm algorithm) {
    return {FallbackStage{false, algorithm}, FallbackStage{true}};
  }

  const Graph g_ = GeneratePowerLawConfiguration(400, 2.1, 2, 60, 71);
  const int64_t expected_ = CountTrianglesForward(g_);
  const DeviceSpec spec_ = DeviceSpec::TitanXpLike();
};

TEST_F(ExecutorTest, CleanRunSucceedsOnFirstAttempt) {
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result = ExecuteResilient(
      g_, spec_, ExecutionPolicy{}, {FallbackStage{false, TcAlgorithm::kHu}},
      PreprocessOptions{}, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->run.triangles, expected_);
  EXPECT_EQ(result->stage, "Hu");
  EXPECT_EQ(result->variant, "base");
  ASSERT_EQ(trace.attempts.size(), 1u);
  EXPECT_TRUE(trace.attempts[0].status.ok());
}

TEST_F(ExecutorTest, FaultMatrixEveryCounterFallsBackToCpu) {
  // Arm each counter's entry site in turn: all of its degraded variants must
  // fail with the injected error and the cpu stage must still deliver the
  // exact count.
  for (TcAlgorithm algorithm : PaperAlgorithms()) {
    FailPointRegistry::Instance().Reset();
    const std::string site = CounterSite(algorithm);
    ASSERT_TRUE(
        FailPointRegistry::Instance().ArmFromString(site + "=internal").ok());

    ExecutionTrace trace;
    const StatusOr<ExecutionResult> result =
        ExecuteResilient(g_, spec_, ExecutionPolicy{}, GpuThenCpu(algorithm),
                         PreprocessOptions{}, &trace);
    ASSERT_TRUE(result.ok()) << ToString(algorithm) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->run.triangles, expected_) << ToString(algorithm);
    EXPECT_EQ(result->stage, "cpu") << ToString(algorithm);
    ASSERT_EQ(trace.attempts.size(), 4u) << ToString(algorithm);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(trace.attempts[i].status.code(), StatusCode::kInternal)
          << ToString(algorithm) << " attempt " << i;
    }
    EXPECT_EQ(FailPointRegistry::Instance().hits(site), 3)
        << ToString(algorithm);
  }
}

TEST_F(ExecutorTest, DegradationLadderWalksVariantsInOrder) {
  // The fault clears after two hits, so the stage recovers on its own third
  // (most degraded) variant without reaching the next stage.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=internal@2").ok());
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result = ExecuteResilient(
      g_, spec_, ExecutionPolicy{}, {FallbackStage{false, TcAlgorithm::kHu}},
      PreprocessOptions{}, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->run.triangles, expected_)
      << "degraded preprocessing must not change the count";
  EXPECT_EQ(result->variant, "no-adirection");
  ASSERT_EQ(trace.attempts.size(), 3u);
  EXPECT_EQ(trace.attempts[0].variant, "base");
  EXPECT_EQ(trace.attempts[1].variant, "no-aorder");
  EXPECT_EQ(trace.attempts[2].variant, "no-adirection");
}

TEST_F(ExecutorTest, OnStageHookSeesValidateAndEveryAttempt) {
  // The progress hook isolated workers use for per-stage heartbeats: it must
  // fire for the up-front validation pass and once per stage/variant
  // attempt, in execution order.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=internal@1").ok());
  std::vector<std::string> stages;
  ExecutionPolicy policy;
  policy.on_stage = [&stages](const std::string& stage) {
    stages.push_back(stage);
  };
  const StatusOr<ExecutionResult> result =
      ExecuteResilient(g_, spec_, policy, GpuThenCpu(TcAlgorithm::kHu),
                       PreprocessOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0], "validate");
  EXPECT_EQ(stages[1], "Hu/base");
  EXPECT_EQ(stages[2], "Hu/no-aorder");
}

TEST_F(ExecutorTest, TransientFaultRecoversOnFirstRetry) {
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=internal@1").ok());
  const StatusOr<ExecutionResult> result = ExecuteResilient(
      g_, spec_, ExecutionPolicy{}, {FallbackStage{false, TcAlgorithm::kHu}},
      PreprocessOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->variant, "no-aorder");
  EXPECT_EQ(result->run.triangles, expected_);
}

TEST_F(ExecutorTest, PreprocessFaultSkipsToCpuStage) {
  // The preprocess site fires on every GPU variant (degradation cannot avoid
  // it), so only the cpu stage — which never preprocesses — can answer.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("preprocess=internal").ok());
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result =
      ExecuteResilient(g_, spec_, ExecutionPolicy{},
                       GpuThenCpu(TcAlgorithm::kHu), PreprocessOptions{}, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage, "cpu");
  EXPECT_EQ(result->run.triangles, expected_);
  EXPECT_EQ(FailPointRegistry::Instance().hits("preprocess"), 3);
}

TEST_F(ExecutorTest, CalibrationFaultRecoversByDroppingCalibration) {
  // sim.memory only fires inside model calibration; the ladder's last rung
  // turns calibration off, so the stage heals itself.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("sim.memory=internal").ok());
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result = ExecuteResilient(
      g_, spec_, ExecutionPolicy{}, {FallbackStage{false, TcAlgorithm::kHu}},
      PreprocessOptions{}, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->variant, "no-adirection");
  EXPECT_EQ(result->run.triangles, expected_);
}

TEST_F(ExecutorTest, ExhaustedChainReportsResourceExhausted) {
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .ArmFromString("tc.hu=internal;tc.cpu=internal")
                  .ok());
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result =
      ExecuteResilient(g_, spec_, ExecutionPolicy{},
                       GpuThenCpu(TcAlgorithm::kHu), PreprocessOptions{}, &trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("fallback attempt"),
            std::string::npos);
  EXPECT_EQ(trace.attempts.size(), 4u);
}

TEST_F(ExecutorTest, TinyDeadlineStopsTheChainEarly) {
  ExecutionPolicy policy;
  policy.timeout_ms = 0.0001;
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result =
      ExecuteResilient(g_, spec_, policy,
                       {FallbackStage{false, TcAlgorithm::kHu},
                        FallbackStage{false, TcAlgorithm::kPolak},
                        FallbackStage{true}},
                       PreprocessOptions{}, &trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // An expired clock must end the chain, not burn the full 7-attempt matrix.
  EXPECT_LT(trace.attempts.size(), 7u);
}

TEST_F(ExecutorTest, CancellationIsObservedWithinOneBlock) {
  // Cancel from the per-block fail-point observer: the counter must notice
  // at its next block poll, so the site records exactly 3 hits. Hu buckets
  // threads_per_block vertex ids per block, so cross 4 blocks needs a graph
  // with several thousand vertices.
  const Graph big = GenerateRmat(13, 8, 72);
  ExecContext ctx;
  FailPointRegistry::Instance().SetObserver(
      "tc.block", [&ctx](int64_t hit) {
        if (hit == 3) ctx.cancel.Cancel("cancelled by test observer");
      });
  FailPointScope scope;
  const StatusOr<RunResult> run = RunTriangleCountWithContext(
      big, TcAlgorithm::kHu, spec_, PreprocessOptions{}, ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_NE(run.status().ToString().find("cancelled by test observer"),
            std::string::npos);
  EXPECT_EQ(FailPointRegistry::Instance().hits("tc.block"), 3)
      << "counter kept working past the cancellation point";
}

TEST_F(ExecutorTest, CountLimitSurfacesOverflowWithoutWrapping) {
  // 400-vertex power-law graph against a 5-triangle ceiling: every stage
  // (GPU variants and the cpu fallback) must refuse to wrap.
  ExecutionPolicy policy;
  policy.count_limit = 5;
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result =
      ExecuteResilient(g_, spec_, policy, GpuThenCpu(TcAlgorithm::kHu),
                       PreprocessOptions{}, &trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  ASSERT_EQ(trace.attempts.size(), 4u);
  for (const AttemptRecord& attempt : trace.attempts) {
    EXPECT_EQ(attempt.status.code(), StatusCode::kOutOfRange)
        << attempt.stage << "/" << attempt.variant;
  }
}

TEST_F(ExecutorTest, MemoryBudgetIsCheckedBeforeAnyAttempt) {
  ExecutionPolicy policy;
  policy.mem_budget_bytes = 16;
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result = ExecuteResilient(
      g_, spec_, policy, {FallbackStage{false, TcAlgorithm::kHu}},
      PreprocessOptions{}, &trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("budget"), std::string::npos);
  EXPECT_TRUE(trace.attempts.empty());
}

TEST_F(ExecutorTest, ModelCeilingBreachFallsBackToCpu) {
  // The GPU result is numerically correct but the modelled device misses an
  // impossible kernel budget; the host stage has no modelled time and wins.
  ExecutionPolicy policy;
  policy.max_model_ms = 1e-9;
  ExecutionTrace trace;
  const StatusOr<ExecutionResult> result =
      ExecuteResilient(g_, spec_, policy, GpuThenCpu(TcAlgorithm::kHu),
                       PreprocessOptions{}, &trace);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stage, "cpu");
  EXPECT_EQ(result->run.triangles, expected_);
  ASSERT_EQ(trace.attempts.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(trace.attempts[i].status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(trace.attempts[i].status.ToString().find("ceiling"),
              std::string::npos);
    EXPECT_GT(trace.attempts[i].model_ms, 0.0);
  }
}

TEST_F(ExecutorTest, TraceSummaryNamesEveryAttempt) {
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=internal@1").ok());
  ExecutionTrace trace;
  ASSERT_TRUE(ExecuteResilient(g_, spec_, ExecutionPolicy{},
                               {FallbackStage{false, TcAlgorithm::kHu}},
                               PreprocessOptions{}, &trace)
                  .ok());
  const std::string summary = trace.Summary();
  EXPECT_NE(summary.find("attempt 1: Hu/base"), std::string::npos);
  EXPECT_NE(summary.find("attempt 2: Hu/no-aorder -> OK"), std::string::npos);
}

TEST(ParseFallbackChainTest, ParsesNamesCaseInsensitively) {
  const StatusOr<std::vector<FallbackStage>> chain =
      ParseFallbackChain(" HU , polak ,Gunrock-bs, cpu ");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->size(), 4u);
  EXPECT_EQ((*chain)[0].name(), "Hu");
  EXPECT_EQ((*chain)[1].name(), "Polak");
  EXPECT_EQ((*chain)[2].name(), "Gunrock-bs");
  EXPECT_EQ((*chain)[3].name(), "cpu");
  EXPECT_TRUE((*chain)[3].is_cpu);
}

TEST(ParseFallbackChainTest, UnknownStageListsChoices) {
  const StatusOr<std::vector<FallbackStage>> chain =
      ParseFallbackChain("hu,bogus");
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(chain.status().ToString().find("valid choices"),
            std::string::npos);
  EXPECT_NE(chain.status().ToString().find("cpu"), std::string::npos);
}

TEST(ParseFallbackChainTest, DuplicateStageIsRejected) {
  // Names normalize case-insensitively, so "hu,Hu" is the same backend twice
  // — a chain that would retry a failed stage against itself.
  const StatusOr<std::vector<FallbackStage>> gpu_dup =
      ParseFallbackChain("hu,Hu");
  ASSERT_FALSE(gpu_dup.ok());
  EXPECT_EQ(gpu_dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(gpu_dup.status().ToString().find("duplicate"), std::string::npos);

  const StatusOr<std::vector<FallbackStage>> cpu_dup =
      ParseFallbackChain("cpu,cpu");
  ASSERT_FALSE(cpu_dup.ok());
  EXPECT_EQ(cpu_dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cpu_dup.status().ToString().find("duplicate"), std::string::npos);

  // Distinct backends that share a fail-point site (both Gunrock variants)
  // are still different stages and must coexist.
  EXPECT_TRUE(ParseFallbackChain("Gunrock-bs,Gunrock-sm,cpu").ok());
}

TEST_F(ExecutorTest, ConcurrentFaultMatrixIsThreadSafe) {
  // The batch service runs many ExecuteResilient calls at once against one
  // process-wide fail-point registry; this pins the whole path (registry
  // evaluation, counters, preprocessing, fallback) as data-race free. Every
  // counter entry site is armed so all threads keep hitting the registry
  // while they fall back, and each thread must still land on the exact cpu
  // count. Run under TSan in CI.
  std::string schedule;
  for (TcAlgorithm algorithm : PaperAlgorithms()) {
    if (!schedule.empty()) schedule += ";";
    schedule += CounterSite(algorithm) + "=internal";
  }
  ASSERT_TRUE(FailPointRegistry::Instance().ArmFromString(schedule).ok());

  constexpr int kThreads = 8;
  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const std::vector<TcAlgorithm> algorithms = PaperAlgorithms();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const TcAlgorithm algorithm = algorithms[t % algorithms.size()];
      ExecutionTrace trace;
      const StatusOr<ExecutionResult> result =
          ExecuteResilient(g_, spec_, ExecutionPolicy{}, GpuThenCpu(algorithm),
                           PreprocessOptions{}, &trace);
      if (result.ok() && result->stage == "cpu" &&
          result->run.triangles == expected_ && trace.attempts.size() == 4u) {
        correct.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(correct.load(), kThreads);
}

TEST(ParseFallbackChainTest, EmptyChainIsRejected) {
  EXPECT_EQ(ParseFallbackChain("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFallbackChain(" , ,").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EstimateHostBytesTest, GrowsWithGraphSize) {
  const int64_t small = EstimateHostBytes(CompleteGraph(10));
  const int64_t large = EstimateHostBytes(CompleteGraph(100));
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace gputc
