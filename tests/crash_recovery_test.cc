// End-to-end crash-injection tests: run the real gputc CLI as a child
// process, kill it at an armed fail-point site (SIGKILL semantics via
// std::_Exit(137) — no destructors, no flushes), then resume and assert the
// crash-safety contract:
//
//   * exactly one journal line per manifest request after resume
//     (no losses, no double-counting),
//   * every artifact the crashed run left behind is either intact or
//     detected — never silently garbage,
//   * the documented exit codes hold across the crash boundary.

#include "crash_harness.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace gputc {
namespace testing {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t begin = json.find(needle);
  if (begin == std::string::npos) return "";
  const size_t value = begin + needle.size();
  const size_t end = json.find('"', value);
  if (end == std::string::npos) return "";
  return json.substr(value, end - value);
}

/// Extracts an unquoted (numeric) JSON field.
std::string JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t begin = json.find(needle);
  if (begin == std::string::npos) return "";
  const size_t value = begin + needle.size();
  const size_t end = json.find_first_of(",}", value);
  if (end == std::string::npos) return "";
  return json.substr(value, end - value);
}

/// id -> outcome|triangles: the journal projection that must be invariant
/// under cache state and storage faults (timings and trace ids legitimately
/// differ between runs).
std::map<std::string, std::string> StableFields(const std::string& journal) {
  std::map<std::string, std::string> stable;
  for (const std::string& line : Lines(Slurp(journal))) {
    stable[JsonField(line, "id")] =
        JsonField(line, "outcome") + "|" + JsonNumber(line, "triangles");
  }
  return stable;
}

/// Per-test scratch directory holding the manifest, WAL, and journal.
class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = ::testing::TempDir() + "/crash_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter++);
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    manifest_ = dir_ + "/jobs.txt";
    journal_ = dir_ + "/journal.jsonl";
    wal_ = dir_ + "/wal";
    std::ofstream out(manifest_);
    for (int seed = 1; seed <= 4; ++seed) {
      out << "gen:rmat:scale=6,seed=" << seed << "\n";
    }
    manifest_size_ = 4;
  }

  std::vector<std::string> BatchArgs(const std::string& shed_policy,
                                     bool resume) const {
    std::vector<std::string> args = {
        "batch",          "--manifest",  manifest_, "--jobs",
        "2",              "--journal",   journal_,  "--wal",
        wal_,             "--shed-policy", shed_policy};
    if (resume) args.push_back("--resume");
    return args;
  }

  /// The core contract: after resume, the journal holds exactly one line
  /// per manifest request, ids unique, all with a terminal outcome.
  void AssertJournalComplete() const {
    const std::vector<std::string> lines = Lines(Slurp(journal_));
    ASSERT_EQ(lines.size(), manifest_size_) << Slurp(journal_);
    std::set<std::string> ids;
    for (const std::string& line : lines) {
      const std::string id = JsonField(line, "id");
      EXPECT_FALSE(id.empty()) << line;
      EXPECT_TRUE(ids.insert(id).second) << "duplicate id: " << id;
      EXPECT_FALSE(JsonField(line, "outcome").empty()) << line;
    }
  }

  std::string dir_, manifest_, journal_, wal_;
  size_t manifest_size_ = 0;
};

// One crashed run + one resume, for every kill site the WAL/journal path
// crosses, under every shed policy. The sites bracket the exactly-once
// invariant from both sides: before the work (intent), after the outcome is
// durable but before it is journaled (done, service.journal), mid-append
// with a deliberately torn record (durable.append.torn), and mid-count
// inside the kernel loop (tc.block).
struct CrashCase {
  const char* site;
  const char* schedule;
};

class CrashMatrixTest
    : public CrashRecoveryTest,
      public ::testing::WithParamInterface<std::tuple<CrashCase, const char*>> {
};

TEST_P(CrashMatrixTest, ResumeRestoresExactlyOnce) {
  const CrashCase crash = std::get<0>(GetParam());
  const std::string shed = std::get<1>(GetParam());

  const ChildResult crashed =
      RunGputc(BatchArgs(shed, /*resume=*/false),
               {std::string("GPUTC_FAILPOINTS=") + crash.schedule});
  ASSERT_EQ(crashed.exit_code, 137)
      << "site " << crash.site << " never fired\nstderr: "
      << crashed.stderr_text;

  const ChildResult resumed = RunGputc(BatchArgs(shed, /*resume=*/true));
  EXPECT_TRUE(resumed.exit_code == 0 || resumed.exit_code == 5)
      << "resume exit " << resumed.exit_code
      << "\nstderr: " << resumed.stderr_text;
  AssertJournalComplete();
}

INSTANTIATE_TEST_SUITE_P(
    KillSitesByShedPolicy, CrashMatrixTest,
    ::testing::Combine(
        ::testing::Values(
            CrashCase{"wal.intent", "wal.intent=crash@1"},
            CrashCase{"wal.done", "wal.done=crash@1"},
            CrashCase{"service.journal", "service.journal=crash@1"},
            CrashCase{"durable.append.torn", "durable.append.torn=crash@1"},
            CrashCase{"tc.block", "tc.block=crash@1"}),
        ::testing::Values("block", "reject", "drop-oldest")),
    [](const ::testing::TestParamInfo<CrashMatrixTest::ParamType>& info) {
      std::string name = std::string(std::get<0>(info.param).site) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (c == '.' || c == '-') c = '_';
      }
      return name;
    });

// A second crash during the resume itself must also be recoverable: the WAL
// keeps accumulating, and a third run finishes the job.
TEST_F(CrashRecoveryTest, DoubleCrashStillConverges) {
  ASSERT_EQ(RunGputc(BatchArgs("block", false),
                     {"GPUTC_FAILPOINTS=wal.done=crash@1"})
                .exit_code,
            137);
  ASSERT_EQ(RunGputc(BatchArgs("block", true),
                     {"GPUTC_FAILPOINTS=service.journal=crash@1"})
                .exit_code,
            137);
  const ChildResult third = RunGputc(BatchArgs("block", true));
  EXPECT_EQ(third.exit_code, 0) << third.stderr_text;
  AssertJournalComplete();
}

// A clean run with a WAL, then a resume, must not re-run anything: the
// journal is rebuilt wholly from replayed lines.
TEST_F(CrashRecoveryTest, ResumeAfterCleanRunReplaysEverything) {
  ASSERT_EQ(RunGputc(BatchArgs("block", false)).exit_code, 0);
  const std::string first_journal = Slurp(journal_);
  const ChildResult resumed = RunGputc(BatchArgs("block", true));
  EXPECT_EQ(resumed.exit_code, 0) << resumed.stderr_text;
  EXPECT_NE(resumed.stderr_text.find("replayed verbatim"), std::string::npos);
  // Verbatim means byte-identical lines (order may differ across runs, but a
  // full replay preserves WAL order, which is the order they were journaled).
  EXPECT_EQ(Slurp(journal_), first_journal);
  AssertJournalComplete();
}

// Crash while SaveBinary is mid-commit: the target must be absent or the
// complete old version — never torn — and the rerun must succeed.
TEST_F(CrashRecoveryTest, SaveBinaryCrashLeavesNoTornFile) {
  const std::string text = dir_ + "/g.txt";
  const std::string bin = dir_ + "/g.bin";
  ASSERT_EQ(RunGputc({"generate", "--family", "er", "--nodes", "400",
                      "--edges", "1600", "--seed", "7", "--out", text})
                .exit_code,
            0);
  const ChildResult crashed =
      RunGputc({"convert", "--in", text, "--out", bin},
               {"GPUTC_FAILPOINTS=durable.commit=crash@1"});
  ASSERT_EQ(crashed.exit_code, 137) << crashed.stderr_text;
  struct stat st;
  EXPECT_NE(::stat(bin.c_str(), &st), 0)
      << "crash before rename must leave no target file";

  ASSERT_EQ(RunGputc({"convert", "--in", text, "--out", bin}).exit_code, 0);
  const ChildResult info = RunGputc({"info", "--in", bin, "--strict"});
  EXPECT_EQ(info.exit_code, 0) << info.stderr_text;
}

// -- the documented exit-code contract, exercised end to end ----------------

TEST_F(CrashRecoveryTest, ExitCodeContract) {
  // 2: --resume without --wal.
  EXPECT_EQ(RunGputc({"batch", "--manifest", manifest_, "--resume"}).exit_code,
            2);
  // 3: missing manifest.
  EXPECT_EQ(
      RunGputc({"batch", "--manifest", dir_ + "/no_such_manifest"}).exit_code,
      3);
  // 2: unknown flag value.
  EXPECT_EQ(RunGputc(BatchArgs("bogus-policy", false)).exit_code, 2);
  // 0: clean run.
  EXPECT_EQ(RunGputc(BatchArgs("block", false)).exit_code, 0);
  // 2: pointing a fresh (non-resume) run at the now-populated WAL.
  const ChildResult stale = RunGputc(BatchArgs("block", false));
  EXPECT_EQ(stale.exit_code, 2);
  EXPECT_NE(stale.stderr_text.find("--resume"), std::string::npos);
  // 0: the resume path accepts it.
  EXPECT_EQ(RunGputc(BatchArgs("block", true)).exit_code, 0);
}

TEST_F(CrashRecoveryTest, PartialFailureIsExitFiveAcrossResume) {
  // Append a request that always fails (unknown dataset) and crash after
  // its outcome is durable. The replayed failure must still drive exit 5.
  {
    std::ofstream out(manifest_, std::ios::app);
    out << "dataset:no-such-dataset\n";
  }
  manifest_size_ = 5;
  ASSERT_EQ(RunGputc(BatchArgs("block", false),
                     {"GPUTC_FAILPOINTS=service.journal=crash@5"})
                .exit_code,
            137);
  const ChildResult resumed = RunGputc(BatchArgs("block", true));
  EXPECT_EQ(resumed.exit_code, 5) << resumed.stderr_text;
  AssertJournalComplete();
}

// -- process isolation (--isolate) ------------------------------------------
//
// The same per-request crash schedule, run both ways, pins down the blast
// radius difference that is the whole point of worker isolation: in-process
// the schedule kills the entire service; isolated it costs exactly one
// request.

class IsolationTest : public CrashRecoveryTest {
 protected:
  void SetUp() override {
    CrashRecoveryTest::SetUp();
    std::ofstream out(manifest_, std::ios::trunc);
    out << "gen:er:nodes=200,edges=600,seed=1\n"
        << "gen:er:nodes=200,edges=600,seed=2 failpoints=tc.block=crash@1\n"
        << "gen:er:nodes=200,edges=600,seed=3\n"
        << "gen:er:nodes=200,edges=600,seed=4\n";
    manifest_size_ = 4;
  }

  std::vector<std::string> IsolateArgs(bool isolate) const {
    std::vector<std::string> args = {"batch",     "--manifest", manifest_,
                                     "--jobs",    "2",          "--journal",
                                     journal_};
    if (isolate) args.push_back("--isolate=2");
    return args;
  }
};

TEST_F(IsolationTest, IsolatedWorkerCrashFailsOnlyThePoisonedRequest) {
  const ChildResult run = RunGputc(IsolateArgs(/*isolate=*/true));
  EXPECT_EQ(run.exit_code, 5) << run.stderr_text;  // Partial, not dead.
  AssertJournalComplete();
  int failed = 0;
  for (const std::string& line : Lines(Slurp(journal_))) {
    const std::string outcome = JsonField(line, "outcome");
    if (JsonField(line, "id").rfind("2:", 0) == 0) {
      EXPECT_EQ(outcome, "failed") << line;
      EXPECT_NE(JsonField(line, "message").find("worker crashed"),
                std::string::npos)
          << line;
    } else {
      EXPECT_EQ(outcome, "ok") << line;
    }
    if (outcome == "failed") ++failed;
  }
  EXPECT_EQ(failed, 1);
}

TEST_F(IsolationTest, SameScheduleWithoutIsolationKillsTheWholeService) {
  const ChildResult run = RunGputc(IsolateArgs(/*isolate=*/false));
  EXPECT_EQ(run.exit_code, 137) << run.stderr_text;
  // The poisoned request took the service down with it mid-run: the journal
  // cannot be complete (the crashing request never journals).
  EXPECT_LT(Lines(Slurp(journal_)).size(), manifest_size_);
}

TEST_F(IsolationTest, IsolatedWorkerHangFailsOnlyTheWedgedRequest) {
  {
    std::ofstream out(manifest_, std::ios::trunc);
    out << "gen:er:nodes=200,edges=600,seed=1\n"
        << "gen:er:nodes=200,edges=600,seed=2 "
           "failpoints=worker.hang=internal@1\n"
        << "gen:er:nodes=200,edges=600,seed=3\n";
    manifest_size_ = 3;
  }
  const ChildResult run = RunGputc(IsolateArgs(/*isolate=*/true));
  EXPECT_EQ(run.exit_code, 5) << run.stderr_text;
  AssertJournalComplete();
  for (const std::string& line : Lines(Slurp(journal_))) {
    if (JsonField(line, "id").rfind("2:", 0) == 0) {
      EXPECT_EQ(JsonField(line, "outcome"), "failed") << line;
      EXPECT_NE(JsonField(line, "message").find("worker hung"),
                std::string::npos)
          << line;
    } else {
      EXPECT_EQ(JsonField(line, "outcome"), "ok") << line;
    }
  }
}

TEST_F(IsolationTest, IsolationComposesWithWalResume) {
  // Crash the *service* (not a worker) after the first outcome is durable;
  // the resumed isolated run must converge to exactly one line per request.
  std::vector<std::string> args = IsolateArgs(/*isolate=*/true);
  args.push_back("--wal");
  args.push_back(wal_);
  ASSERT_EQ(RunGputc(args, {"GPUTC_FAILPOINTS=service.journal=crash@1"})
                .exit_code,
            137);
  args.push_back("--resume");
  const ChildResult resumed = RunGputc(args);
  EXPECT_EQ(resumed.exit_code, 5) << resumed.stderr_text;  // Poisoned req.
  AssertJournalComplete();
}

// -- preprocessing cache (--prep-cache) -------------------------------------
//
// The durable cache tier adds two fallible sites (cache.load, cache.store)
// to the crash surface. The contract: a crash at either site, or a torn or
// corrupt artifact left on disk, may cost recomputes — never a wrong count,
// a lost request, or a failed resume. The stable journal fields (id,
// outcome, triangle count) must be invariant under cache state.

class CacheCrashTest : public CrashRecoveryTest {
 protected:
  void SetUp() override {
    CrashRecoveryTest::SetUp();
    cache_dir_ = dir_ + "/prep-cache";
  }

  std::vector<std::string> CachedBatchArgs(bool resume) const {
    std::vector<std::string> args = BatchArgs("block", resume);
    args.push_back("--prep-cache");
    args.push_back(cache_dir_);
    return args;
  }

  /// A run against the same manifest and cache dir but its own journal and
  /// no WAL, so it executes every request instead of replaying.
  std::vector<std::string> FreshCachedArgs(const std::string& journal) const {
    return {"batch",     "--manifest", manifest_, "--jobs",       "2",
            "--journal", journal,      "--prep-cache", cache_dir_};
  }

  std::vector<std::string> CacheFiles() const {
    std::vector<std::string> files;
    DIR* d = ::opendir(cache_dir_.c_str());
    if (d == nullptr) return files;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.rfind("prep-", 0) == 0) files.push_back(cache_dir_ + "/" + name);
    }
    ::closedir(d);
    return files;
  }

  static void FlipByte(const std::string& path, long offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(0, std::ios::end);
    const long size = static_cast<long>(f.tellg());
    const long pos = offset >= 0 ? offset : size + offset;
    ASSERT_GE(pos, 0);
    ASSERT_LT(pos, size);
    f.seekg(pos);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(pos);
    f.write(&byte, 1);
  }

  std::string cache_dir_;
};

// Crash at the first tier-2 store. The resumed batch must converge, and a
// later warm run over whatever artifacts survived must report the same
// counts a cold run would.
TEST_F(CacheCrashTest, CacheStoreCrashNeverCorruptsResumedBatch) {
  const ChildResult crashed =
      RunGputc(CachedBatchArgs(/*resume=*/false),
               {"GPUTC_FAILPOINTS=cache.store=crash@1"});
  ASSERT_EQ(crashed.exit_code, 137) << crashed.stderr_text;

  const ChildResult resumed = RunGputc(CachedBatchArgs(/*resume=*/true));
  EXPECT_EQ(resumed.exit_code, 0) << resumed.stderr_text;
  AssertJournalComplete();
  const std::map<std::string, std::string> after_resume =
      StableFields(journal_);

  // Whatever the crash left in the cache dir, a warm run agrees with the
  // resumed one on every stable field.
  const std::string warm_journal = dir_ + "/journal-warm.jsonl";
  const ChildResult warm = RunGputc(FreshCachedArgs(warm_journal));
  EXPECT_EQ(warm.exit_code, 0) << warm.stderr_text;
  EXPECT_EQ(StableFields(warm_journal), after_resume);
}

// Crash at the first tier-2 load of a warm run: the artifacts are valid,
// the reader dies anyway. Resume must finish with the cold run's counts.
TEST_F(CacheCrashTest, CacheLoadCrashOnWarmRunResumesToColdResults) {
  const std::string cold_journal = dir_ + "/journal-cold.jsonl";
  ASSERT_EQ(RunGputc(FreshCachedArgs(cold_journal)).exit_code, 0);
  ASSERT_FALSE(CacheFiles().empty()) << "cold run populated no artifacts";
  const std::map<std::string, std::string> cold = StableFields(cold_journal);

  const ChildResult crashed =
      RunGputc(CachedBatchArgs(/*resume=*/false),
               {"GPUTC_FAILPOINTS=cache.load=crash@1"});
  ASSERT_EQ(crashed.exit_code, 137) << crashed.stderr_text;

  const ChildResult resumed = RunGputc(CachedBatchArgs(/*resume=*/true));
  EXPECT_EQ(resumed.exit_code, 0) << resumed.stderr_text;
  AssertJournalComplete();
  EXPECT_EQ(StableFields(journal_), cold);
}

// Bit-flip every artifact a clean run wrote. The warm rerun must detect the
// corruption (CRC framing), silently recompute, and land on identical
// results — and the recomputation heals the store for the run after it.
TEST_F(CacheCrashTest, TornCacheArtifactsNeverChangeResults) {
  const std::string cold_journal = dir_ + "/journal-cold.jsonl";
  ASSERT_EQ(RunGputc(FreshCachedArgs(cold_journal)).exit_code, 0);
  const std::map<std::string, std::string> cold = StableFields(cold_journal);

  const std::vector<std::string> files = CacheFiles();
  ASSERT_FALSE(files.empty());
  for (size_t i = 0; i < files.size(); ++i) {
    // Alternate corruption sites: header-adjacent and payload tail.
    FlipByte(files[i], i % 2 == 0 ? 24 : -5);
  }

  const std::string warm_journal = dir_ + "/journal-warm.jsonl";
  const ChildResult warm = RunGputc(FreshCachedArgs(warm_journal));
  EXPECT_EQ(warm.exit_code, 0) << warm.stderr_text;
  EXPECT_EQ(StableFields(warm_journal), cold);

  // The recompute rewrote the artifacts; a third run reads them back clean.
  const std::string healed_journal = dir_ + "/journal-healed.jsonl";
  const ChildResult healed = RunGputc(FreshCachedArgs(healed_journal));
  EXPECT_EQ(healed.exit_code, 0) << healed.stderr_text;
  EXPECT_EQ(StableFields(healed_journal), cold);
}

// -- storage faults (ENOSPC/EIO at the fs_io boundary) -----------------------
//
// The failure under test is not a crash but a disk that stops taking bytes:
// fs.fsync=enospc^K lets the first K fsyncs succeed and fails every later
// one — the exact shape of a filesystem filling up mid-batch. The contract
// per --wal-policy:
//
//   strict (default)  exit 6, journal holds exactly a clean prefix (complete
//                     lines only, never torn), and --resume after the space
//                     comes back converges on the fault-free run's results.
//   degrade           exit 0, every request finishes, lines that lost their
//                     durability cover say "durable":false.

class StorageFaultCliTest : public CrashRecoveryTest {
 protected:
  /// Single worker so the run cannot finish before the armed fsync failures
  /// land; the fault-free baseline uses the same shape.
  std::vector<std::string> WalArgs(bool resume,
                                   const std::string& policy = "") const {
    std::vector<std::string> args = {"batch", "--manifest", manifest_,
                                     "--jobs", "1",         "--journal",
                                     journal_, "--wal",     wal_};
    if (!policy.empty()) {
      args.push_back("--wal-policy");
      args.push_back(policy);
    }
    if (resume) args.push_back("--resume");
    return args;
  }
};

TEST_F(StorageFaultCliTest, StrictStopThenResumeConvergesOnBaseline) {
  // Fault-free baseline (no WAL, own journal) for the stable fields.
  const std::string baseline_journal = dir_ + "/journal-baseline.jsonl";
  ASSERT_EQ(RunGputc({"batch", "--manifest", manifest_, "--jobs", "1",
                      "--journal", baseline_journal})
                .exit_code,
            0);
  const std::map<std::string, std::string> baseline =
      StableFields(baseline_journal);

  // Disk fills after the third fsync; strict (the default) must fail-stop.
  const ChildResult stopped = RunGputc(
      WalArgs(/*resume=*/false), {"GPUTC_FAILPOINTS=fs.fsync=enospc^3"});
  EXPECT_EQ(stopped.exit_code, 6) << stopped.stderr_text;
  EXPECT_NE(stopped.stderr_text.find("storage fail-stop"), std::string::npos)
      << stopped.stderr_text;
  EXPECT_NE(stopped.stderr_text.find("--resume"), std::string::npos)
      << "the operator hint must name the recovery path";

  // The journal holds a clean prefix: fewer lines than the manifest, every
  // one a complete JSON object with a terminal outcome.
  const std::vector<std::string> prefix = Lines(Slurp(journal_));
  EXPECT_LT(prefix.size(), manifest_size_);
  for (const std::string& line : prefix) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_FALSE(JsonField(line, "outcome").empty()) << line;
  }

  // Space comes back (the harness strips the fail points); --resume must
  // finish the manifest and agree with the baseline on every stable field.
  const ChildResult resumed = RunGputc(WalArgs(/*resume=*/true));
  EXPECT_EQ(resumed.exit_code, 0) << resumed.stderr_text;
  AssertJournalComplete();
  EXPECT_EQ(StableFields(journal_), baseline);
}

TEST_F(StorageFaultCliTest, DegradePolicyFinishesEveryRequest) {
  std::vector<std::string> args = {"batch",    "--manifest",   manifest_,
                                   "--jobs",   "1",            "--journal",
                                   "-",        "--wal",        wal_,
                                   "--wal-policy", "degrade"};
  const ChildResult run =
      RunGputc(args, {"GPUTC_FAILPOINTS=fs.fsync=enospc^2"});
  EXPECT_EQ(run.exit_code, 0) << run.stderr_text;

  // Every request finished; the lines that lost their durability cover are
  // stamped, and at least one must be (the WAL degraded mid-run).
  const std::vector<std::string> lines = Lines(run.stdout_text);
  ASSERT_EQ(lines.size(), manifest_size_) << run.stdout_text;
  size_t stamped = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(JsonField(line, "outcome"), "ok") << line;
    if (line.find("\"durable\":false") != std::string::npos) ++stamped;
  }
  EXPECT_GE(stamped, 1u) << run.stdout_text;
  EXPECT_NE(run.stderr_text.find("degrade"), std::string::npos)
      << "the degradation must be announced on stderr: " << run.stderr_text;
}

TEST_F(StorageFaultCliTest, PreflightRefusesTheManifestUpFront) {
  const ChildResult refused = RunGputc(
      WalArgs(/*resume=*/false), {"GPUTC_FAILPOINTS=storage.preflight=enospc"});
  EXPECT_EQ(refused.exit_code, 6) << refused.stderr_text;
  EXPECT_NE(refused.stderr_text.find("injected ENOSPC"), std::string::npos)
      << refused.stderr_text;
  // Refused up front: nothing was admitted, nothing was journaled.
  EXPECT_TRUE(Lines(Slurp(journal_)).empty()) << Slurp(journal_);
}

TEST_F(StorageFaultCliTest, WalPolicyFlagContract) {
  // 2: unknown policy value.
  EXPECT_EQ(RunGputc(WalArgs(false, "lenient")).exit_code, 2);
  // 2: --wal-policy without --wal is a contradiction, not a no-op.
  EXPECT_EQ(RunGputc({"batch", "--manifest", manifest_, "--journal", "-",
                      "--wal-policy", "strict"})
                .exit_code,
            2);
  // 0: both policies are accepted on a healthy disk.
  EXPECT_EQ(RunGputc(WalArgs(false, "strict")).exit_code, 0);
  EXPECT_EQ(RunGputc(WalArgs(true, "degrade")).exit_code, 0);
}

TEST_F(StorageFaultCliTest, CacheStoreFaultsNeverFailRequests) {
  // A persistently failing cache disk trips the tier-2 breaker; the work
  // itself must stay green — the cache is an accelerator, not a dependency.
  const std::string cache_dir = dir_ + "/prep-cache";
  const ChildResult run =
      RunGputc({"batch", "--manifest", manifest_, "--jobs", "2", "--journal",
                journal_, "--prep-cache", cache_dir},
               {"GPUTC_FAILPOINTS=cache.store=eio"});
  EXPECT_EQ(run.exit_code, 0) << run.stderr_text;
  AssertJournalComplete();
  for (const std::string& line : Lines(Slurp(journal_))) {
    EXPECT_EQ(JsonField(line, "outcome"), "ok") << line;
  }
}

}  // namespace
}  // namespace testing
}  // namespace gputc
