#include <gtest/gtest.h>

#include <numeric>

#include "core/pipeline.h"
#include "direction/cost_model.h"
#include "direction/direction.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "order/calibration.h"
#include "order/classic_orders.h"
#include "tc/cpu_counters.h"
#include "util/random.h"

namespace gputc {
namespace {

// Randomized property sweeps: the invariants every component must hold on
// arbitrary graphs, exercised across seeds and graph families via TEST_P.

struct FuzzCase {
  uint64_t seed;
  int family;  // 0 = ER, 1 = power-law, 2 = RMAT, 3 = small-world.
};

Graph MakeGraph(const FuzzCase& c) {
  switch (c.family) {
    case 0:
      return GenerateErdosRenyi(200 + c.seed % 100, 800, c.seed);
    case 1:
      return GeneratePowerLawConfiguration(300, 1.8 + (c.seed % 5) * 0.2, 1,
                                           100, c.seed);
    case 2:
      return GenerateRmat(8, 4 + static_cast<int>(c.seed % 4), c.seed);
    default:
      return GenerateWattsStrogatz(250, 4 + 2 * static_cast<int>(c.seed % 2),
                                   0.1, c.seed);
  }
}

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzTest, OrientationInvariants) {
  const Graph g = MakeGraph(GetParam());
  for (DirectionStrategy s : AllDirectionStrategies()) {
    const std::vector<VertexId> rank = DirectionRank(g, s, GetParam().seed);
    ASSERT_TRUE(IsPermutation(rank)) << ToString(s);
    const DirectedGraph d = DirectedGraph::FromRank(g, rank);
    // Arc count conservation and degree split.
    EXPECT_EQ(d.num_edges(), g.num_edges());
    EdgeCount total_out = 0;
    for (VertexId v = 0; v < d.num_vertices(); ++v) {
      total_out += d.out_degree(v);
      EXPECT_LE(d.out_degree(v), g.degree(v));
    }
    EXPECT_EQ(total_out, g.num_edges());
    // No directed 3-cycles.
    EXPECT_TRUE(HasNoDirectedTriangleCycle(g, d)) << ToString(s);
  }
}

TEST_P(FuzzTest, CostIsOrientationBounded) {
  // For any orientation: 0 <= C(P) <= 3m, since each |d~(v) - d_avg| term
  // is at most d~(v) + d_avg, and both sum to m over the graph.
  const Graph g = MakeGraph(GetParam());
  if (g.num_edges() == 0) return;
  const double m = static_cast<double>(g.num_edges());
  for (DirectionStrategy s : AllDirectionStrategies()) {
    const double cost = DirectionCost(Orient(g, s, GetParam().seed));
    EXPECT_LE(cost, 3.0 * m + 1e-9) << ToString(s);
    EXPECT_GE(cost, 0.0);
  }
}

TEST_P(FuzzTest, CountInvariantAcrossWholePipeline) {
  const Graph g = MakeGraph(GetParam());
  const int64_t expected = CountTrianglesForward(g);
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  PreprocessOptions options;  // A-direction + A-order.
  for (TcAlgorithm algorithm :
       {TcAlgorithm::kHu, TcAlgorithm::kTriCore, TcAlgorithm::kFox}) {
    EXPECT_EQ(RunTriangleCount(g, algorithm, spec, options).triangles,
              expected)
        << ToString(algorithm);
  }
}

TEST_P(FuzzTest, PermutationRoundTrip) {
  const Graph g = MakeGraph(GetParam());
  const Permutation perm = RandomOrder(g.num_vertices(), GetParam().seed);
  const Permutation inv = InversePermutation(perm);
  const Graph there = ApplyPermutation(g, perm);
  const Graph back = ApplyPermutation(there, inv);
  EXPECT_EQ(back.offsets(), g.offsets());
  EXPECT_EQ(back.adjacency(), g.adjacency());
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  for (uint64_t seed : {11ull, 23ull, 47ull}) {
    for (int family = 0; family < 4; ++family) {
      cases.push_back(FuzzCase{seed, family});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "family" +
             std::to_string(info.param.family);
    });

}  // namespace
}  // namespace gputc
