#include <gtest/gtest.h>

#include "direction/brute_force.h"
#include "direction/cost_model.h"
#include "direction/direction.h"
#include "graph/generators.h"

namespace gputc {
namespace {

TEST(BruteForceTest, SingleEdgeCost) {
  const Graph g = PathGraph(2);
  const BruteForceDirectionResult r = BruteForceOptimalDirection(g);
  EXPECT_EQ(r.orientations_examined, 2);
  EXPECT_EQ(r.orientations_valid, 2);
  // d_avg = 0.5; out-degrees {1, 0} either way: cost = 0.5 + 0.5 = 1.
  EXPECT_DOUBLE_EQ(r.optimal_cost, 1.0);
}

TEST(BruteForceTest, TriangleExcludesDirectedCycles) {
  const Graph g = CycleGraph(3);
  const BruteForceDirectionResult r = BruteForceOptimalDirection(g);
  EXPECT_EQ(r.orientations_examined, 8);
  // Of 8 orientations, exactly 2 are directed 3-cycles.
  EXPECT_EQ(r.orientations_valid, 6);
  // d_avg = 1, and the perfectly flat {1,1,1} orientation is exactly the
  // forbidden directed cycle — so the constrained optimum is {2,1,0} with
  // cost |2-1| + |1-1| + |0-1| = 2.
  EXPECT_DOUBLE_EQ(r.optimal_cost, 2.0);
}

TEST(BruteForceTest, StarOptimumIsFlat) {
  const Graph g = StarGraph(5);  // 4 edges, d_avg = 0.8.
  const BruteForceDirectionResult r = BruteForceOptimalDirection(g);
  // Best: all edges leaf -> hub. Out-degrees {0,1,1,1,1}: cost =
  // 0.8 + 4 * 0.2 = 1.6.
  EXPECT_NEAR(r.optimal_cost, 1.6, 1e-12);
}

TEST(BruteForceTest, OptimalNeverExceedsHeuristics) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = GenerateErdosRenyi(8, 12, seed);
    const BruteForceDirectionResult opt = BruteForceOptimalDirection(g);
    for (DirectionStrategy s : AllDirectionStrategies()) {
      const double heuristic_cost = DirectionCost(Orient(g, s));
      EXPECT_LE(opt.optimal_cost, heuristic_cost + 1e-9)
          << "seed=" << seed << " strategy=" << ToString(s);
    }
  }
}

TEST(BruteForceTest, WitnessDegreesMatchCost) {
  const Graph g = GenerateErdosRenyi(7, 10, 3);
  const BruteForceDirectionResult r = BruteForceOptimalDirection(g);
  EXPECT_DOUBLE_EQ(
      DirectionCostFromOutDegrees(r.optimal_out_degrees, g.num_edges()),
      r.optimal_cost);
}

TEST(BruteForceDeathTest, TooManyEdgesAborts) {
  const Graph g = GenerateErdosRenyi(30, 25, 1);
  EXPECT_DEATH(BruteForceOptimalDirection(g), "24 edges");
}

}  // namespace
}  // namespace gputc
