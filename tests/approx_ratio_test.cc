#include <gtest/gtest.h>

#include <cmath>

#include "direction/approx_ratio.h"
#include "direction/brute_force.h"
#include "direction/cost_model.h"
#include "direction/direction.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace gputc {
namespace {

TEST(ApproxRatioTest, EmptyGraphIsTrivial) {
  const ApproxRatioBound b =
      ComputeApproxRatioBound(Graph::FromEdgeList(EdgeList{}));
  EXPECT_DOUBLE_EQ(b.rho, 1.0);
}

TEST(ApproxRatioTest, ClassifiesCoreAndNonCore) {
  const Graph g = StarGraph(10);  // d_avg = 0.9; hub core, leaves core too
                                  // (degree 1 >= 0.9).
  const ApproxRatioBound b = ComputeApproxRatioBound(g);
  EXPECT_EQ(b.num_core + b.num_non_core, 10);
  EXPECT_DOUBLE_EQ(b.d_avg, 0.9);
}

TEST(ApproxRatioTest, BoundHoldsAgainstBruteForceOptimum) {
  // On graphs small enough to solve exactly, A-direction's realized ratio
  // must respect Theorem 4.2's bound (when the bound is finite).
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = GenerateErdosRenyi(9, 14, seed);
    const double opt = BruteForceOptimalDirection(g).optimal_cost;
    const double alg =
        DirectionCost(Orient(g, DirectionStrategy::kADirection));
    const ApproxRatioBound bound = ComputeApproxRatioBound(g);
    if (opt > 0.0 && std::isfinite(bound.rho)) {
      EXPECT_LE(alg / opt, bound.rho + 1e-9) << "seed=" << seed;
    }
    // A-direction can never beat the optimum.
    EXPECT_GE(alg, opt - 1e-9) << "seed=" << seed;
  }
}

TEST(ApproxRatioTest, PowerLawGraphsStayUnderPaperCeiling) {
  // Figure 7 / Table 3: rho < 1.8 on power-law graphs. The theorem's lower
  // bound degenerates on near-forest inputs (d~_avg close to 1), so the
  // paper's ceiling applies at moderate density; very sparse graphs only
  // get a finite bound (see EXPERIMENTS.md).
  for (double gamma : {1.8, 2.0, 2.2}) {
    const Graph g =
        GeneratePowerLawConfiguration(4000, gamma, 1, 400,
                                      /*seed=*/static_cast<uint64_t>(gamma * 10));
    const ApproxRatioBound b = ComputeApproxRatioBound(g);
    ASSERT_GE(b.d_avg, 1.5) << "gamma=" << gamma;
    EXPECT_TRUE(std::isfinite(b.rho)) << "gamma=" << gamma;
    EXPECT_LT(b.rho, 1.9) << "gamma=" << gamma;
    EXPECT_GE(b.rho, 1.0) << "gamma=" << gamma;
  }
  const Graph sparse = GeneratePowerLawConfiguration(4000, 2.6, 1, 400, 26);
  EXPECT_TRUE(std::isfinite(ComputeApproxRatioBound(sparse).rho));
}

TEST(ApproxRatioTest, RealDatasetStandInsStayUnderCeiling) {
  // Table 3 datasets with d~_avg >= 2 land in the paper's 1.16..1.63 band;
  // the near-forest cit-patents stand-in (d~_avg ~1.1) only gets a finite
  // bound.
  for (const char* name :
       {"email-Euall", "gowalla", "com-lj", "kron-logn21"}) {
    const ApproxRatioBound b = ComputeApproxRatioBound(LoadDataset(name));
    EXPECT_TRUE(std::isfinite(b.rho)) << name;
    EXPECT_LT(b.rho, 1.8) << name;
    EXPECT_GT(b.rho, 1.05) << name;
  }
  const ApproxRatioBound sparse =
      ComputeApproxRatioBound(LoadDataset("cit-patents"));
  EXPECT_TRUE(std::isfinite(sparse.rho));
  EXPECT_LT(sparse.rho, 4.0);
}

TEST(ApproxRatioTest, LowerBoundIsActuallyALowerBound) {
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    const Graph g = GenerateErdosRenyi(8, 13, seed);
    const double opt = BruteForceOptimalDirection(g).optimal_cost;
    const ApproxRatioBound bound = ComputeApproxRatioBound(g);
    EXPECT_LE(bound.lower_bound_opt, opt + 1e-9) << "seed=" << seed;
  }
}

TEST(ApproxRatioTest, ReportsPeelDegree) {
  const Graph g = GeneratePowerLawConfiguration(2000, 2.1, 1, 150, 40);
  const ApproxRatioBound b = ComputeApproxRatioBound(g);
  EXPECT_GT(b.peel_degree, 0);
  EXPECT_LE(b.peel_degree, g.MaxDegree());
}

}  // namespace
}  // namespace gputc
