#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "util/checked_math.h"
#include "util/deadline.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

/// Every test wipes the registry on entry and exit so an ambient
/// GPUTC_FAILPOINTS (or a sibling test) cannot perturb its schedule.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().Reset(); }
  void TearDown() override { FailPointRegistry::Instance().Reset(); }
};

TEST_F(FailPointTest, IdleSiteIsFree) {
  EXPECT_FALSE(FailPointRegistry::Instance().has_armed_or_observed());
  FailPointScope scope;
  EXPECT_TRUE(CheckFailPoint("tc.hu").ok());
}

TEST_F(FailPointTest, ArmedSiteFiresOnlyInsideScope) {
  FailPointRegistry::Instance().Arm("tc.hu", FailPointSpec{});
  EXPECT_TRUE(FailPointRegistry::Instance().has_armed_or_observed());
  // Outside any scope the site stays silent: oracle code that never opted
  // into recovery must not see injected errors.
  EXPECT_FALSE(FailPointScope::active());
  EXPECT_TRUE(CheckFailPoint("tc.hu").ok());

  FailPointScope scope;
  EXPECT_TRUE(FailPointScope::active());
  const Status status = CheckFailPoint("tc.hu");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_TRUE(CheckFailPoint("tc.polak").ok()) << "only armed sites fire";
}

TEST_F(FailPointTest, DisarmSilencesSite) {
  FailPointRegistry::Instance().Arm("io.load", FailPointSpec{});
  FailPointRegistry::Instance().Disarm("io.load");
  FailPointScope scope;
  EXPECT_TRUE(CheckFailPoint("io.load").ok());
}

TEST_F(FailPointTest, CountLimitedFiringStopsAfterBudget) {
  FailPointSpec spec;
  spec.code = StatusCode::kDataLoss;
  spec.count = 2;
  FailPointRegistry::Instance().Arm("io.load", spec);
  FailPointScope scope;
  EXPECT_EQ(CheckFailPoint("io.load").code(), StatusCode::kDataLoss);
  EXPECT_EQ(CheckFailPoint("io.load").code(), StatusCode::kDataLoss);
  EXPECT_TRUE(CheckFailPoint("io.load").ok()) << "budget of 2 spent";
  EXPECT_EQ(FailPointRegistry::Instance().hits("io.load"), 3);
}

TEST_F(FailPointTest, ZeroProbabilityNeverFires) {
  FailPointSpec spec;
  spec.probability = 0.0;
  FailPointRegistry::Instance().Arm("tc.block", spec);
  FailPointScope scope;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(CheckFailPoint("tc.block").ok());
  }
  EXPECT_EQ(FailPointRegistry::Instance().hits("tc.block"), 100);
}

TEST_F(FailPointTest, SeededProbabilityIsDeterministicAndRoughlyFair) {
  auto count_fires = [](uint64_t seed) {
    FailPointRegistry::Instance().Reset();
    FailPointSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    FailPointRegistry::Instance().Arm("tc.hu", spec);
    FailPointScope scope;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      if (!CheckFailPoint("tc.hu").ok()) ++fired;
    }
    return fired;
  };
  const int first = count_fires(7);
  EXPECT_EQ(first, count_fires(7)) << "same seed, same schedule";
  EXPECT_GT(first, 300);
  EXPECT_LT(first, 700);
}

TEST_F(FailPointTest, ArmFromStringParsesFullGrammar) {
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .ArmFromString(
                      "tc.hu=internal@2;io.load=data_loss%0.5$9;"
                      "sim.memory=resource_exhausted")
                  .ok());
  const auto armed = FailPointRegistry::Instance().ArmedSites();
  EXPECT_EQ(armed.size(), 3u);
  FailPointScope scope;
  EXPECT_EQ(CheckFailPoint("sim.memory").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CheckFailPoint("tc.hu").code(), StatusCode::kInternal);
  EXPECT_EQ(CheckFailPoint("tc.hu").code(), StatusCode::kInternal);
  EXPECT_TRUE(CheckFailPoint("tc.hu").ok()) << "@2 budget spent";
}

TEST_F(FailPointTest, ErrnoAliasesInjectTheMappedStatusWithLabel) {
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .ArmFromString("fsa=enospc;fsb=eio;fsc=edquot")
                  .ok());
  FailPointScope scope;
  const Status enospc = CheckFailPoint("fsa");
  EXPECT_EQ(enospc.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(enospc.ToString().find("injected ENOSPC"), std::string::npos)
      << enospc.ToString();
  const Status eio = CheckFailPoint("fsb");
  EXPECT_EQ(eio.code(), StatusCode::kDataLoss);
  EXPECT_NE(eio.ToString().find("injected EIO"), std::string::npos);
  const Status edquot = CheckFailPoint("fsc");
  EXPECT_EQ(edquot.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(edquot.ToString().find("injected EDQUOT"), std::string::npos);
}

TEST_F(FailPointTest, SkipLetsEarlyHitsPassThenFiresForever) {
  // ^3 with no @count: three passes, then every hit fails — the disk that
  // worked until it filled. The storage suite leans on this shape.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("fs.x=enospc^3").ok());
  FailPointScope scope;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(CheckFailPoint("fs.x").ok()) << "skip hit " << i;
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(CheckFailPoint("fs.x").code(), StatusCode::kResourceExhausted)
        << "post-skip hit " << i;
  }
  EXPECT_EQ(FailPointRegistry::Instance().hits("fs.x"), 8);
}

TEST_F(FailPointTest, SkipComposesWithCount) {
  // ^2@2: two passes, two failures, then the budget is spent and the site
  // goes quiet — a transient fault window.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("fs.y=eio@2^2").ok());
  FailPointScope scope;
  EXPECT_TRUE(CheckFailPoint("fs.y").ok());
  EXPECT_TRUE(CheckFailPoint("fs.y").ok());
  EXPECT_FALSE(CheckFailPoint("fs.y").ok());
  EXPECT_FALSE(CheckFailPoint("fs.y").ok());
  EXPECT_TRUE(CheckFailPoint("fs.y").ok()) << "@2 budget spent";
}

TEST_F(FailPointTest, ArmFromStringRejectsBadEntriesAtomically) {
  EXPECT_FALSE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=bogus_code").ok());
  EXPECT_FALSE(FailPointRegistry::Instance().ArmFromString("no_equals").ok());
  EXPECT_FALSE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=internal%2.5").ok());
  // A bad entry must not arm the valid ones before it.
  EXPECT_FALSE(FailPointRegistry::Instance()
                   .ArmFromString("tc.hu=internal;tc.polak=nope")
                   .ok());
  EXPECT_TRUE(FailPointRegistry::Instance().ArmedSites().empty());
}

TEST_F(FailPointTest, CrashActionParsesWithFullGrammar) {
  // Arming only — firing a crash action would kill the test process, which
  // is exactly what crash_recovery_test does from a fork/exec harness.
  ASSERT_TRUE(FailPointRegistry::Instance()
                  .ArmFromString("wal.done=crash@1;durable.commit=crash%0.5$7")
                  .ok());
  EXPECT_EQ(FailPointRegistry::Instance().ArmedSites().size(), 2u);
}

TEST_F(FailPointTest, CrashActionWithZeroProbabilityNeverFires) {
  // Proves the probability gate runs before the action: an armed crash with
  // p = 0 must be a no-op, not a kill.
  ASSERT_TRUE(
      FailPointRegistry::Instance().ArmFromString("tc.hu=crash%0.0").ok());
  FailPointScope scope;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(CheckFailPoint("tc.hu").ok());
}

TEST_F(FailPointTest, CrashActionRejectsTrailingGarbage) {
  const Status bad = FailPointRegistry::Instance().ArmFromString("tc.hu=crashx");
  ASSERT_FALSE(bad.ok());
  // The error's valid-code list must advertise the crash action.
  EXPECT_NE(bad.message().find("crash"), std::string::npos) << bad.ToString();
}

TEST_F(FailPointTest, ObserverSeesHitsWithoutArming) {
  int64_t last_hit = 0;
  FailPointRegistry::Instance().SetObserver(
      "tc.block", [&last_hit](int64_t hit) { last_hit = hit; });
  FailPointScope scope;
  EXPECT_TRUE(CheckFailPoint("tc.block").ok());
  EXPECT_TRUE(CheckFailPoint("tc.block").ok());
  EXPECT_EQ(last_hit, 2);
  EXPECT_EQ(FailPointRegistry::Instance().hits("tc.block"), 2);
}

TEST_F(FailPointTest, ScopesNest) {
  FailPointRegistry::Instance().Arm("tc.hu", FailPointSpec{});
  FailPointScope outer;
  {
    FailPointScope inner;
    EXPECT_FALSE(CheckFailPoint("tc.hu").ok());
  }
  EXPECT_TRUE(FailPointScope::active()) << "outer scope still open";
  EXPECT_FALSE(CheckFailPoint("tc.hu").ok());
}

TEST(DeadlineTest, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_millis(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, ShortDeadlineExpires) {
  const Deadline d = Deadline::AfterMillis(0.5);
  EXPECT_FALSE(d.is_infinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_LT(d.remaining_millis(), 0.0);
}

TEST(DeadlineTest, GenerousDeadlineHasTimeLeft) {
  const Deadline d = Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 0.0);
}

TEST(CancelTokenTest, CopiesShareOneFlag) {
  CancelToken original;
  CancelToken copy = original;
  EXPECT_FALSE(copy.cancelled());
  original.Cancel("test stop");
  EXPECT_TRUE(copy.cancelled());
  EXPECT_EQ(copy.reason(), "test stop");
}

TEST(CancelTokenTest, FirstReasonWins) {
  CancelToken token;
  token.Cancel("first");
  token.Cancel("second");
  EXPECT_EQ(token.reason(), "first");
}

TEST(ExecContextTest, UnconstrainedContextAlwaysContinues) {
  const ExecContext ctx;
  EXPECT_FALSE(ctx.stop_requested());
  EXPECT_TRUE(ctx.CheckContinue("tc.hu").ok());
  EXPECT_EQ(ctx.count_limit, std::numeric_limits<int64_t>::max());
}

TEST(ExecContextTest, CancellationSurfacesAsCancelledWithSite) {
  ExecContext ctx;
  ctx.cancel.Cancel("user interrupt");
  EXPECT_TRUE(ctx.stop_requested());
  const Status status = ctx.CheckContinue("tc.block");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.ToString().find("tc.block"), std::string::npos);
  EXPECT_NE(status.ToString().find("user interrupt"), std::string::npos);
}

TEST(ExecContextTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  ExecContext ctx;
  ctx.deadline = Deadline::AfterMillis(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(ctx.stop_requested());
  EXPECT_EQ(ctx.CheckContinue("preprocess").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(CheckedMathTest, PredicatesMatchBuiltinLimits) {
  const int64_t big = std::numeric_limits<int64_t>::max();
  EXPECT_FALSE(AddWouldOverflow(big - 1, 1));
  EXPECT_TRUE(AddWouldOverflow(big, 1));
  EXPECT_TRUE(MulWouldOverflow(big / 2 + 1, 2));
  EXPECT_FALSE(MulWouldOverflow(1'000'000, 1'000'000));
  EXPECT_EQ(SaturatingAdd(big, 1), big);
  EXPECT_EQ(SaturatingAdd(std::numeric_limits<int64_t>::min(), -1),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(SaturatingAdd(40, 2), 42);
}

TEST(CheckedMathTest, AccumulatorSumsBelowLimit) {
  CheckedInt64 acc;
  acc.Add(40);
  acc.Add(2);
  EXPECT_EQ(acc.value(), 42);
  EXPECT_FALSE(acc.overflowed());
  EXPECT_TRUE(acc.ToStatus("count").ok());
}

TEST(CheckedMathTest, AccumulatorSaturatesAtConfiguredLimit) {
  CheckedInt64 acc(/*limit=*/10);
  acc.Add(6);
  acc.Add(6);  // 12 > 10: saturate, raise the sticky flag.
  acc.Add(1);  // Further adds are ignored.
  EXPECT_TRUE(acc.overflowed());
  EXPECT_EQ(acc.value(), 10);
  const Status status = acc.ToStatus("triangle count");
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(status.ToString().find("triangle count"), std::string::npos);
  EXPECT_NE(status.ToString().find("10"), std::string::npos);
}

TEST(CheckedMathTest, AccumulatorCatchesTrueInt64Overflow) {
  CheckedInt64 acc;
  acc.Add(std::numeric_limits<int64_t>::max());
  acc.Add(1);
  EXPECT_TRUE(acc.overflowed());
  EXPECT_EQ(acc.ToStatus("sum").code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace gputc
