#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/permutation.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

TEST(PermutationTest, IdentityAndValidity) {
  const Permutation id = IdentityPermutation(5);
  EXPECT_TRUE(IsPermutation(id));
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(id[v], v);

  EXPECT_FALSE(IsPermutation({0, 0, 1}));
  EXPECT_FALSE(IsPermutation({0, 3, 1}));
  EXPECT_TRUE(IsPermutation({2, 0, 1}));
}

TEST(PermutationTest, InverseComposesToIdentity) {
  const Permutation p = {2, 0, 3, 1};
  const Permutation inv = InversePermutation(p);
  const Permutation composed = Compose(inv, p);
  EXPECT_EQ(composed, IdentityPermutation(4));
}

TEST(PermutationTest, ComposeOrder) {
  // outer applied after inner: result[v] = outer[inner[v]].
  const Permutation inner = {1, 2, 0};
  const Permutation outer = {2, 0, 1};
  const Permutation composed = Compose(outer, inner);
  EXPECT_EQ(composed, (Permutation{0, 1, 2}));
}

TEST(PermutationTest, FromSequence) {
  // Sequence lists old ids in new-id order.
  const Permutation p = PermutationFromSequence({2, 0, 1});
  EXPECT_EQ(p[2], 0u);
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[1], 2u);
}

TEST(PermutationTest, ApplyPreservesStructure) {
  const Graph g = GenerateErdosRenyi(40, 150, /*seed=*/21);
  Permutation perm(40);
  for (VertexId v = 0; v < 40; ++v) perm[v] = (v * 7 + 3) % 40;
  ASSERT_TRUE(IsPermutation(perm));
  const Graph h = ApplyPermutation(g, perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId u = 0; u < 40; ++u) {
    EXPECT_EQ(h.degree(perm[u]), g.degree(u));
    for (VertexId v : g.neighbors(u)) {
      EXPECT_TRUE(h.HasEdge(perm[u], perm[v]));
    }
  }
}

TEST(PermutationTest, RelabelingIsTriangleInvariant) {
  const Graph g = GeneratePowerLawConfiguration(500, 2.0, 2, 60, /*seed=*/22);
  const int64_t before = CountTrianglesForward(g);
  Permutation perm(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    perm[v] = (v * 13 + 5) % g.num_vertices();
  }
  // 13 is coprime with 500, so this is a bijection.
  ASSERT_TRUE(IsPermutation(perm));
  EXPECT_EQ(CountTrianglesForward(ApplyPermutation(g, perm)), before);
}

}  // namespace
}  // namespace gputc
