// Differential cache-equivalence suite for the preprocessing cache: a cache
// hit must be indistinguishable from the compute it replaced — byte-identical
// CSR, permutation, costs, calibration, and triangle counts — across every
// counter, ordering, and direction on the structurally diverse corpus. Plus
// the cache mechanics themselves: LRU order, byte-budget accounting,
// fingerprint sensitivity, single-flight dedup under a thread storm, and
// tier-2 corruption recovery (a bad cache file costs a recompute, never a
// wrong answer).

#include "crash_harness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "core/executor.h"
#include "core/pipeline.h"
#include "core/prep_cache.h"
#include "core/preprocess.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "service/cache_store.h"
#include "tc/cpu_counters.h"
#include "tc/registry.h"
#include "util/failpoint.h"

namespace gputc {
namespace {

struct CorpusEntry {
  std::string name;
  Graph graph;
};

Graph StarOn64() {
  EdgeList list(64);
  for (VertexId leaf = 1; leaf < 64; ++leaf) list.Add(0, leaf);
  list.Normalize();
  return Graph::FromEdgeList(std::move(list));
}

Graph CliqueChain() {
  EdgeList list(25);
  for (VertexId clique = 0; clique < 5; ++clique) {
    const VertexId base = clique * 5;
    for (VertexId i = 0; i < 5; ++i) {
      for (VertexId j = i + 1; j < 5; ++j) {
        list.Add(base + i, base + j);
      }
    }
    if (clique > 0) list.Add(base - 1, base);
  }
  list.Normalize();
  return Graph::FromEdgeList(std::move(list));
}

Graph SingleEdge() {
  EdgeList list(2);
  list.Add(0, 1);
  return Graph::FromEdgeList(std::move(list));
}

/// The differential_test corpus: the cache must be invisible on exactly the
/// graphs the counters are proven correct on.
std::vector<CorpusEntry> Corpus() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(
      {"power-law", GeneratePowerLawConfiguration(300, 2.3, 2, 40, 11)});
  corpus.push_back({"uniform", GenerateErdosRenyi(200, 800, 12)});
  corpus.push_back({"star", StarOn64()});
  corpus.push_back({"clique-chain", CliqueChain()});
  corpus.push_back({"empty", Graph::FromEdgeList(EdgeList(0))});
  corpus.push_back({"edgeless", Graph::FromEdgeList(EdgeList(50))});
  corpus.push_back({"single-edge", SingleEdge()});
  return corpus;
}

constexpr TcAlgorithm kAllAlgorithms[] = {
    TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kGunrockSortMerge,
    TcAlgorithm::kTriCore,             TcAlgorithm::kFox,
    TcAlgorithm::kBisson,              TcAlgorithm::kHu,
    TcAlgorithm::kPolak};

std::string FreshDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "/prep_cache_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// A tiny synthetic artifact whose ByteSize is controlled via adj padding —
/// the unit the mechanics tests (LRU, budget, single-flight) insert.
PrepArtifact TinyArtifact(VertexId n, size_t adj_len, double lambda) {
  PrepArtifact artifact;
  artifact.offsets.assign(n + 1, 0);
  artifact.adj.assign(adj_len, 0);
  artifact.offsets.back() = static_cast<EdgeCount>(adj_len);
  artifact.vertex_perm.resize(n);
  for (VertexId v = 0; v < n; ++v) artifact.vertex_perm[v] = v;
  artifact.lambda = lambda;
  return artifact;
}

PrepCacheKey SyntheticKey(const std::string& name) {
  PrepCacheKey key;
  key.canonical = "synthetic|" + name;
  key.hash = std::hash<std::string>{}(key.canonical);
  key.id = name;
  return key;
}

/// Asserts every observable field of two preprocessing results is identical
/// (byte-for-byte on the vectors): the cache-equivalence oracle.
void ExpectSameResult(const PreprocessResult& a, const PreprocessResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.graph.offsets(), b.graph.offsets()) << label;
  EXPECT_EQ(a.graph.adjacency(), b.graph.adjacency()) << label;
  EXPECT_EQ(a.vertex_perm, b.vertex_perm) << label;
  EXPECT_EQ(a.direction_cost, b.direction_cost) << label;
  EXPECT_EQ(a.ordering_cost, b.ordering_cost) << label;
  EXPECT_EQ(a.lambda, b.lambda) << label;
}

// -- differential equivalence ------------------------------------------------

// Every (graph, direction, ordering): the uncached compute, the cache-miss
// fill, and the cache hit must produce byte-identical preprocessing output.
TEST(PrepCacheDifferentialTest, HitAndMissMatchUncachedEverywhere) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  for (const CorpusEntry& entry : Corpus()) {
    for (DirectionStrategy direction :
         {DirectionStrategy::kIdBased, DirectionStrategy::kADirection}) {
      for (OrderingStrategy ordering :
           {OrderingStrategy::kOriginal, OrderingStrategy::kAOrder,
            OrderingStrategy::kDegree, OrderingStrategy::kRandom}) {
        const std::string label = entry.name + "/" + ToString(direction) +
                                  "/" + ToString(ordering);
        PreprocessOptions options;
        options.direction = direction;
        options.ordering = ordering;
        options.calibrate = false;  // Keep the 7x2x4 sweep fast.
        const StatusOr<PreprocessResult> uncached =
            TryPreprocess(entry.graph, spec, options, ExecContext());
        ASSERT_TRUE(uncached.ok()) << label;

        PrepCache cache(/*byte_budget=*/0);
        options.prep_cache = &cache;
        const StatusOr<PreprocessResult> miss =
            TryPreprocess(entry.graph, spec, options, ExecContext());
        ASSERT_TRUE(miss.ok()) << label;
        const StatusOr<PreprocessResult> hit =
            TryPreprocess(entry.graph, spec, options, ExecContext());
        ASSERT_TRUE(hit.ok()) << label;

        ExpectSameResult(*uncached, *miss, label + " (miss)");
        ExpectSameResult(*uncached, *hit, label + " (hit)");
        EXPECT_EQ(cache.stats().misses, 1) << label;
        EXPECT_EQ(cache.stats().memory_hits, 1) << label;
      }
    }
  }
}

// Every counter, on every corpus graph, over a cache hit: the count must
// match the exact brute-force count (the pipeline's core correctness claim
// survives artifact round-tripping).
TEST(PrepCacheDifferentialTest, AllCountersCorrectOnCacheHits) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  for (const CorpusEntry& entry : Corpus()) {
    const int64_t expected = CountTrianglesNodeIterator(entry.graph);
    PrepCache cache(/*byte_budget=*/0);
    PreprocessOptions options;
    options.calibrate = false;
    options.prep_cache = &cache;
    for (TcAlgorithm algorithm : kAllAlgorithms) {
      const StatusOr<RunResult> run =
          TryRunTriangleCount(entry.graph, algorithm, spec, options);
      ASSERT_TRUE(run.ok())
          << entry.name << " / " << ToString(algorithm) << ": "
          << run.status().ToString();
      EXPECT_EQ(run->triangles, expected)
          << entry.name << " / " << ToString(algorithm);
    }
    // Six counters share the default-options artifact (one fill, five
    // hits); Fox reorders *edges* instead of relabeling vertices (Section
    // 6.4), so its pipeline preprocesses under different options and
    // correctly keys its own second entry.
    EXPECT_EQ(cache.stats().misses, 2) << entry.name;
    EXPECT_EQ(cache.stats().memory_hits, 5) << entry.name;
  }
}

// Calibration rides in the artifact: a hit must reproduce the calibrated
// lambda exactly, not re-calibrate or fall back to the paper constant.
TEST(PrepCacheDifferentialTest, CalibrationSurvivesTheCache) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = GeneratePowerLawConfiguration(200, 2.3, 2, 30, 7);
  PreprocessOptions options;
  options.calibrate = true;
  const StatusOr<PreprocessResult> uncached =
      TryPreprocess(g, spec, options, ExecContext());
  ASSERT_TRUE(uncached.ok());

  PrepCache cache(/*byte_budget=*/0);
  options.prep_cache = &cache;
  ASSERT_TRUE(TryPreprocess(g, spec, options, ExecContext()).ok());
  const StatusOr<PreprocessResult> hit =
      TryPreprocess(g, spec, options, ExecContext());
  ASSERT_TRUE(hit.ok());
  ExpectSameResult(*uncached, *hit, "calibrated");
  EXPECT_GT(hit->lambda, 0.0);
}

// Tier-2 round trip through a fresh process-equivalent (new PrepCache, same
// directory): the disk artifact alone must reproduce the compute.
TEST(PrepCacheDifferentialTest, DiskTierReproducesAcrossCacheInstances) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = GenerateErdosRenyi(200, 800, 12);
  DiskCacheStore store(FreshDir("roundtrip"));
  PreprocessOptions options;
  options.calibrate = true;

  PreprocessResult first = [&] {
    PrepCache cold(0, &store);
    options.prep_cache = &cold;
    StatusOr<PreprocessResult> r = TryPreprocess(g, spec, options, ExecContext());
    EXPECT_TRUE(r.ok());
    return *std::move(r);
  }();

  PrepCache warm(0, &store);
  options.prep_cache = &warm;
  const StatusOr<PreprocessResult> from_disk =
      TryPreprocess(g, spec, options, ExecContext());
  ASSERT_TRUE(from_disk.ok());
  ExpectSameResult(first, *from_disk, "disk round trip");
  EXPECT_EQ(warm.stats().disk_hits, 1);
  EXPECT_EQ(warm.stats().misses, 0);
}

// -- fingerprint sensitivity -------------------------------------------------

TEST(PrepFingerprintTest, StableForIdenticalInputs) {
  const Graph g = GenerateErdosRenyi(100, 300, 3);
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const PreprocessOptions options;
  const PrepCacheKey a = PrepFingerprint(g, spec, options);
  const PrepCacheKey b = PrepFingerprint(g, spec, options);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.id.size(), 16u);
}

TEST(PrepFingerprintTest, EverySensitiveInputChangesTheKey) {
  const Graph g = GenerateErdosRenyi(100, 300, 3);
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  PreprocessOptions base_options;
  const std::string base = PrepFingerprint(g, spec, base_options).canonical;

  // One extra edge: the graph digest must move.
  {
    EdgeList list(100);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (VertexId u : g.neighbors(v)) {
        if (v < u) list.Add(v, u);
      }
    }
    list.Add(0, 99);
    list.Normalize();
    const Graph mutated = Graph::FromEdgeList(std::move(list));
    EXPECT_NE(PrepFingerprint(mutated, spec, base_options).canonical, base);
  }
  {
    PreprocessOptions o = base_options;
    o.direction = DirectionStrategy::kIdBased;
    EXPECT_NE(PrepFingerprint(g, spec, o).canonical, base);
  }
  {
    PreprocessOptions o = base_options;
    o.ordering = OrderingStrategy::kDegree;
    EXPECT_NE(PrepFingerprint(g, spec, o).canonical, base);
  }
  {
    PreprocessOptions o = base_options;
    o.calibrate = !o.calibrate;
    EXPECT_NE(PrepFingerprint(g, spec, o).canonical, base);
  }
  {
    PreprocessOptions o = base_options;
    o.seed = 99;
    EXPECT_NE(PrepFingerprint(g, spec, o).canonical, base);
  }
  {
    PreprocessOptions o = base_options;
    o.aorder.bucket_size = 7;
    EXPECT_NE(PrepFingerprint(g, spec, o).canonical, base);
  }
  {
    DeviceSpec other = spec;
    other.num_sms += 1;
    EXPECT_NE(PrepFingerprint(g, other, base_options).canonical, base);
  }
  // The cache pointer itself must NOT participate: otherwise no two caches
  // could ever share tier 2.
  {
    PrepCache cache(0);
    PreprocessOptions o = base_options;
    o.prep_cache = &cache;
    EXPECT_EQ(PrepFingerprint(g, spec, o).canonical, base);
  }
  // Explicit bucket equal to the device default folds to the same key.
  {
    PreprocessOptions o = base_options;
    o.aorder.bucket_size = spec.threads_per_block();
    EXPECT_EQ(PrepFingerprint(g, spec, o).canonical, base);
  }
}

// -- LRU mechanics -----------------------------------------------------------

StatusOr<std::shared_ptr<const PrepArtifact>> Put(PrepCache& cache,
                                                  const std::string& name,
                                                  size_t adj_len) {
  return cache.GetOrCompute(SyntheticKey(name), ExecContext(),
                            [&]() -> StatusOr<PrepArtifact> {
                              return TinyArtifact(4, adj_len, 1.0);
                            });
}

TEST(PrepCacheLruTest, EvictsLeastRecentlyUsedFirst) {
  const int64_t one = TinyArtifact(4, 1000, 1.0).ByteSize();
  // Budget holds exactly two artifacts; shards=1 makes LRU order exact.
  PrepCache cache(2 * one, nullptr, /*shards=*/1);
  ASSERT_TRUE(Put(cache, "a", 1000).ok());
  ASSERT_TRUE(Put(cache, "b", 1000).ok());
  // Touch "a": it becomes most recent, so "b" is now the tail.
  ASSERT_TRUE(Put(cache, "a", 1000).ok());
  ASSERT_TRUE(Put(cache, "c", 1000).ok());
  EXPECT_TRUE(cache.Contains(SyntheticKey("a")));
  EXPECT_FALSE(cache.Contains(SyntheticKey("b")));
  EXPECT_TRUE(cache.Contains(SyntheticKey("c")));
  const PrepCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.resident_entries, 2);
  EXPECT_EQ(stats.memory_hits, 1);  // The "a" touch.
  EXPECT_EQ(stats.misses, 3);
}

TEST(PrepCacheLruTest, ByteAccountingIsExact) {
  PrepCache cache(/*byte_budget=*/0, nullptr, /*shards=*/1);
  int64_t expected = 0;
  for (int i = 0; i < 5; ++i) {
    const size_t adj_len = 100 * (i + 1);
    expected += TinyArtifact(4, adj_len, 1.0).ByteSize();
    ASSERT_TRUE(Put(cache, "k" + std::to_string(i), adj_len).ok());
  }
  EXPECT_EQ(cache.stats().resident_bytes, expected);
  EXPECT_EQ(cache.stats().resident_entries, 5);

  cache.Purge();
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().resident_entries, 0);
  EXPECT_FALSE(cache.Contains(SyntheticKey("k0")));

  // Refill after purge works (and recomputes).
  ASSERT_TRUE(Put(cache, "k0", 100).ok());
  EXPECT_TRUE(cache.Contains(SyntheticKey("k0")));
}

TEST(PrepCacheLruTest, OversizedArtifactPassesThroughWithoutResidency) {
  const int64_t one = TinyArtifact(4, 1000, 1.0).ByteSize();
  PrepCache cache(one / 2, nullptr, /*shards=*/1);
  const auto value = Put(cache, "big", 1000);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ((*value)->adj.size(), 1000u);  // Caller still gets the artifact.
  EXPECT_EQ(cache.stats().resident_entries, 0);
  EXPECT_EQ(cache.stats().resident_bytes, 0);
  EXPECT_EQ(cache.stats().evictions, 1);
}

// An evicted artifact stays alive for holders of the shared pointer.
TEST(PrepCacheLruTest, EvictedArtifactSurvivesForHolders) {
  const int64_t one = TinyArtifact(4, 1000, 1.0).ByteSize();
  PrepCache cache(one, nullptr, /*shards=*/1);
  const auto first = Put(cache, "x", 1000);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(Put(cache, "y", 1000).ok());  // Evicts "x".
  EXPECT_FALSE(cache.Contains(SyntheticKey("x")));
  EXPECT_EQ((*first)->adj.size(), 1000u);
  EXPECT_EQ((*first)->offsets.back(), 1000);
}

// -- single flight -----------------------------------------------------------

// Eight threads ask for the same key while the fill stalls: exactly one fill
// runs, everyone gets the same artifact, and the other seven are recorded as
// coalesced waits. TSan-clean by construction (this test is in the sanitizer
// matrix).
TEST(PrepCacheSingleFlightTest, StormRunsExactlyOneFill) {
  PrepCache cache(/*byte_budget=*/0);
  const PrepCacheKey key = SyntheticKey("storm");
  std::atomic<int> fills{0};
  std::atomic<int> started{0};
  constexpr int kThreads = 8;

  std::vector<std::shared_ptr<const PrepArtifact>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      started.fetch_add(1);
      // Spin until every thread is launched so the storm is simultaneous.
      while (started.load() < kThreads) std::this_thread::yield();
      const auto r =
          cache.GetOrCompute(key, ExecContext(), [&]() -> StatusOr<PrepArtifact> {
            fills.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return TinyArtifact(4, 64, 2.5);
          });
      ASSERT_TRUE(r.ok());
      results[i] = *r;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(fills.load(), 1);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(results[i], results[0]);  // One shared artifact instance.
    EXPECT_EQ(results[i]->lambda, 2.5);
  }
  const PrepCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.coalesced_waits + stats.memory_hits, kThreads - 1);
}

// A failing fill propagates to every waiter and caches nothing; the next
// caller retries the fill.
TEST(PrepCacheSingleFlightTest, FillErrorReachesAllWaitersAndCachesNothing) {
  PrepCache cache(/*byte_budget=*/0);
  const PrepCacheKey key = SyntheticKey("storm-fail");
  std::atomic<int> fills{0};
  constexpr int kThreads = 4;
  std::vector<Status> statuses(kThreads, OkStatus());
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const auto r =
          cache.GetOrCompute(key, ExecContext(), [&]() -> StatusOr<PrepArtifact> {
            fills.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return InternalError("fill exploded");
          });
      statuses[i] = r.status();
    });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kInternal);
  }
  EXPECT_FALSE(cache.Contains(key));
  EXPECT_EQ(cache.stats().misses, 0);  // Only successful fills count.

  const auto retry = Put(cache, "storm-fail", 16);
  EXPECT_TRUE(retry.ok());
  EXPECT_GE(fills.load(), 1);
}

// A deadline must reach a waiter blocked behind a slow leader.
TEST(PrepCacheSingleFlightTest, WaiterHonorsItsDeadline) {
  PrepCache cache(/*byte_budget=*/0);
  const PrepCacheKey key = SyntheticKey("slow-leader");
  std::atomic<bool> leader_in{false};
  std::atomic<bool> release{false};

  std::thread leader([&] {
    (void)cache.GetOrCompute(key, ExecContext(), [&]() -> StatusOr<PrepArtifact> {
      leader_in.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return TinyArtifact(4, 16, 1.0);
    });
  });
  while (!leader_in.load()) std::this_thread::yield();

  ExecContext ctx;
  ctx.deadline = Deadline::AfterMillis(30);
  const auto waited = cache.GetOrCompute(
      key, ctx, []() -> StatusOr<PrepArtifact> { return TinyArtifact(4, 16, 1.0); });
  EXPECT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);

  release.store(true);
  leader.join();
}

// -- artifact codec ----------------------------------------------------------

TEST(PrepArtifactCodecTest, RoundTripsEveryField) {
  PrepArtifact artifact = TinyArtifact(6, 40, 3.25);
  artifact.calibrated = true;
  artifact.bw_by_log2_len = {1.0, 2.5, 7.75};
  artifact.direction_cost = 123.5;
  artifact.ordering_cost = 456.25;

  const std::string encoded = EncodePrepArtifact(artifact);
  const StatusOr<PrepArtifact> decoded = DecodePrepArtifact(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->offsets, artifact.offsets);
  EXPECT_EQ(decoded->adj, artifact.adj);
  EXPECT_EQ(decoded->vertex_perm, artifact.vertex_perm);
  EXPECT_EQ(decoded->calibrated, artifact.calibrated);
  EXPECT_EQ(decoded->lambda, artifact.lambda);
  EXPECT_EQ(decoded->bw_by_log2_len, artifact.bw_by_log2_len);
  EXPECT_EQ(decoded->direction_cost, artifact.direction_cost);
  EXPECT_EQ(decoded->ordering_cost, artifact.ordering_cost);
  EXPECT_EQ(decoded->ByteSize(), artifact.ByteSize());
}

TEST(PrepArtifactCodecTest, RejectsForeignAndTruncatedBuffers) {
  const std::string encoded = EncodePrepArtifact(TinyArtifact(6, 40, 1.0));
  EXPECT_EQ(DecodePrepArtifact("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodePrepArtifact("GARBAGE-NOT-AN-ARTIFACT").status().code(),
            StatusCode::kInvalidArgument);
  for (const size_t cut : {size_t{4}, size_t{9}, encoded.size() / 2,
                           encoded.size() - 1}) {
    EXPECT_EQ(DecodePrepArtifact(encoded.substr(0, cut)).status().code(),
              StatusCode::kInvalidArgument)
        << "cut at " << cut;
  }
  EXPECT_EQ(DecodePrepArtifact(encoded + "x").status().code(),
            StatusCode::kInvalidArgument);
}

// -- tier-2 store ------------------------------------------------------------

TEST(DiskCacheStoreTest, StoresAndLoadsBack) {
  DiskCacheStore store(FreshDir("basic"));
  const PrepCacheKey key = SyntheticKey("deadbeef00000001");
  EXPECT_EQ(store.Load(key).status().code(), StatusCode::kNotFound);

  const std::string payload = EncodePrepArtifact(TinyArtifact(5, 32, 2.0));
  ASSERT_TRUE(store.Store(key, payload).ok());
  const StatusOr<std::string> loaded = store.Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, payload);

  const StatusOr<DiskCacheStore::DiskStats> stats = store.ScanStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files, 1);
  EXPECT_GT(stats->bytes, static_cast<int64_t>(payload.size()));

  const StatusOr<int64_t> purged = store.PurgeAll();
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(*purged, 1);
  EXPECT_EQ(store.Load(key).status().code(), StatusCode::kNotFound);
}

/// Flips one byte at `offset` (from the start, or from the end if negative).
void FlipByte(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const int64_t size = f.tellg();
  const int64_t pos = offset >= 0 ? offset : size + offset;
  ASSERT_LT(pos, size);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(pos);
  f.write(&byte, 1);
}

TEST(DiskCacheStoreTest, BitFlipAnywhereIsDataLossNeverWrongBytes) {
  const std::string payload = EncodePrepArtifact(TinyArtifact(5, 32, 2.0));
  const PrepCacheKey key = SyntheticKey("deadbeef00000002");
  // Flip a byte in the header, the key frame, and the payload region.
  for (const int64_t offset : {int64_t{2}, int64_t{24}, int64_t{-5}}) {
    DiskCacheStore store(FreshDir("flip"));
    ASSERT_TRUE(store.Store(key, payload).ok());
    FlipByte(store.PathFor(key), offset);
    const StatusOr<std::string> loaded = store.Load(key);
    ASSERT_FALSE(loaded.ok()) << "offset " << offset;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "offset " << offset << ": " << loaded.status().ToString();
  }
}

TEST(DiskCacheStoreTest, TruncationIsDataLoss) {
  DiskCacheStore store(FreshDir("trunc"));
  const PrepCacheKey key = SyntheticKey("deadbeef00000003");
  const std::string payload = EncodePrepArtifact(TinyArtifact(5, 32, 2.0));
  ASSERT_TRUE(store.Store(key, payload).ok());
  const std::string path = store.PathFor(key);
  struct ::stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size / 2), 0);
  EXPECT_EQ(store.Load(key).status().code(), StatusCode::kDataLoss);
}

// Two fingerprints colliding on the same 64-bit id (same file name) must
// degrade to NotFound for the second key — a miss, never a foreign artifact.
TEST(DiskCacheStoreTest, IdCollisionIsAMissNotAWrongArtifact) {
  DiskCacheStore store(FreshDir("collide"));
  PrepCacheKey a = SyntheticKey("deadbeef00000004");
  PrepCacheKey b = a;
  b.canonical = "synthetic|other-fingerprint-same-id";
  ASSERT_TRUE(store.Store(a, "payload-for-a").ok());
  EXPECT_EQ(store.Load(b).status().code(), StatusCode::kNotFound);
  const StatusOr<std::string> still_a = store.Load(a);
  ASSERT_TRUE(still_a.ok());
  EXPECT_EQ(*still_a, "payload-for-a");
}

TEST(DiskCacheStoreTest, MissingDirectoryIsEmptyNotAnError) {
  DiskCacheStore store(::testing::TempDir() + "/prep_cache_never_created_" +
                       std::to_string(::getpid()));
  const StatusOr<DiskCacheStore::DiskStats> stats = store.ScanStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->files, 0);
  EXPECT_EQ(stats->bytes, 0);
  const StatusOr<int64_t> purged = store.PurgeAll();
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(*purged, 0);
  EXPECT_EQ(store.Load(SyntheticKey("0000000000000000")).status().code(),
            StatusCode::kNotFound);
}

// -- corruption recovery through the full cache ------------------------------

// A corrupt tier-2 artifact is detected (CRC), recomputed, and healed on
// disk; the caller sees a correct result throughout.
TEST(PrepCacheRecoveryTest, CorruptArtifactRecomputedAndHealed) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = GenerateErdosRenyi(150, 500, 5);
  DiskCacheStore store(FreshDir("heal"));
  PreprocessOptions options;
  options.calibrate = false;
  const PrepCacheKey key = PrepFingerprint(g, spec, options);

  PreprocessResult reference = [&] {
    PrepCache fill(0, &store);
    options.prep_cache = &fill;
    StatusOr<PreprocessResult> r = TryPreprocess(g, spec, options, ExecContext());
    EXPECT_TRUE(r.ok());
    return *std::move(r);
  }();

  FlipByte(store.PathFor(key), -3);

  // Fresh tier 1 (a restarted process): the corrupt file must cost a
  // recompute, not correctness.
  PrepCache recovered(0, &store);
  options.prep_cache = &recovered;
  const StatusOr<PreprocessResult> after =
      TryPreprocess(g, spec, options, ExecContext());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectSameResult(reference, *after, "recovered from corruption");
  EXPECT_EQ(recovered.stats().load_errors, 1);
  EXPECT_EQ(recovered.stats().misses, 1);
  EXPECT_EQ(recovered.stats().disk_hits, 0);

  // The recompute re-wrote the file: a third instance gets a clean disk hit.
  PrepCache healed(0, &store);
  options.prep_cache = &healed;
  ASSERT_TRUE(TryPreprocess(g, spec, options, ExecContext()).ok());
  EXPECT_EQ(healed.stats().disk_hits, 1);
  EXPECT_EQ(healed.stats().load_errors, 0);
}

// Armed cache.load / cache.store fail points: tier-2 faults must never fail
// the request — load faults recompute, store faults only lose future reuse.
TEST(PrepCacheRecoveryTest, InjectedTierFaultsNeverFailTheRequest) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = GenerateErdosRenyi(150, 500, 5);
  PreprocessOptions options;
  options.calibrate = false;

  FailPointRegistry::Instance().Reset();
  {
    DiskCacheStore store(FreshDir("inject-store"));
    PrepCache cache(0, &store);
    options.prep_cache = &cache;
    ASSERT_TRUE(FailPointRegistry::Instance()
                    .ArmFromString("cache.store=internal")
                    .ok());
    const StatusOr<PreprocessResult> r =
        TryPreprocess(g, spec, options, ExecContext());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(cache.stats().store_errors, 1);
    FailPointRegistry::Instance().Reset();
    // Nothing landed on disk.
    const StatusOr<DiskCacheStore::DiskStats> stats = store.ScanStats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->files, 0);
  }
  {
    DiskCacheStore store(FreshDir("inject-load"));
    PrepCache fill(0, &store);
    options.prep_cache = &fill;
    ASSERT_TRUE(TryPreprocess(g, spec, options, ExecContext()).ok());

    ASSERT_TRUE(FailPointRegistry::Instance()
                    .ArmFromString("cache.load=data_loss")
                    .ok());
    PrepCache reread(0, &store);
    options.prep_cache = &reread;
    const StatusOr<PreprocessResult> r =
        TryPreprocess(g, spec, options, ExecContext());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(reread.stats().load_errors, 1);
    EXPECT_EQ(reread.stats().misses, 1);
    FailPointRegistry::Instance().Reset();
  }
}

// Purging tier 1 mid-stream changes nothing observable: the next request
// recomputes (or re-reads tier 2) into an identical result.
TEST(PrepCacheRecoveryTest, PurgeMidRunPreservesResults) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = GenerateErdosRenyi(150, 500, 5);
  PrepCache cache(0);
  PreprocessOptions options;
  options.calibrate = false;
  options.prep_cache = &cache;

  const StatusOr<PreprocessResult> before =
      TryPreprocess(g, spec, options, ExecContext());
  ASSERT_TRUE(before.ok());
  cache.Purge();
  const StatusOr<PreprocessResult> after =
      TryPreprocess(g, spec, options, ExecContext());
  ASSERT_TRUE(after.ok());
  ExpectSameResult(*before, *after, "across purge");
  EXPECT_EQ(cache.stats().misses, 2);
}

// -- executor integration ----------------------------------------------------

// The degradation ladder keys every rung separately: warming the base
// configuration must not alias the degraded variants (and vice versa).
TEST(PrepCacheExecutorTest, DegradationRungsGetTheirOwnEntries) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = GenerateErdosRenyi(150, 500, 5);
  PrepCache cache(0);
  PreprocessOptions base;
  base.calibrate = false;
  base.prep_cache = &cache;

  PreprocessOptions no_aorder = base;
  no_aorder.ordering = OrderingStrategy::kOriginal;

  ASSERT_TRUE(TryPreprocess(g, spec, base, ExecContext()).ok());
  EXPECT_TRUE(cache.Contains(PrepFingerprint(g, spec, base)));
  EXPECT_FALSE(cache.Contains(PrepFingerprint(g, spec, no_aorder)));

  ASSERT_TRUE(TryPreprocess(g, spec, no_aorder, ExecContext()).ok());
  EXPECT_TRUE(cache.Contains(PrepFingerprint(g, spec, no_aorder)));
  EXPECT_EQ(cache.stats().misses, 2);
}

// The cached-admission estimate must be genuinely cheaper than the cold one
// (that gap is what the admission fix in the batch service banks on).
TEST(PrepCacheExecutorTest, CachedEstimateIsBelowColdEstimate) {
  const Graph g = GenerateErdosRenyi(200, 800, 12);
  EXPECT_LT(EstimateHostBytesCached(g), EstimateHostBytes(g));
  EXPECT_GT(EstimateHostBytesCached(g), 0);
}

// -- CLI cache-command exit codes on a broken directory -----------------------
//
// `gputc cache stats|purge` against a vanished or unusable directory must
// answer with the documented exit codes (2 = flag error, 3 = I/O error), not
// silently report an empty cache (stats on a missing dir used to print
// zeros) and not crash.

TEST(CacheCliTest, StatsAndPurgeOnVanishedDirExitThree) {
  const std::string dir = ::testing::TempDir() + "/cache_cli_vanished_" +
                          std::to_string(::getpid());
  for (const char* verb : {"stats", "purge"}) {
    const testing::ChildResult run =
        testing::RunGputc({"cache", verb, "--prep-cache", dir});
    EXPECT_EQ(run.exit_code, 3) << verb << ": " << run.stderr_text;
    EXPECT_NE(run.stderr_text.find("does not exist"), std::string::npos)
        << verb << ": " << run.stderr_text;
  }
}

TEST(CacheCliTest, StatsAndPurgeOnNonDirectoryExitTwo) {
  // The path exists but is a file: a flag error, the operator pointed the
  // command somewhere that can never be a cache.
  const std::string path = ::testing::TempDir() + "/cache_cli_file_" +
                           std::to_string(::getpid());
  { std::ofstream out(path); out << "not a directory"; }
  for (const char* verb : {"stats", "purge"}) {
    const testing::ChildResult run =
        testing::RunGputc({"cache", verb, "--prep-cache", path});
    EXPECT_EQ(run.exit_code, 2) << verb << ": " << run.stderr_text;
    EXPECT_NE(run.stderr_text.find("not a directory"), std::string::npos)
        << verb << ": " << run.stderr_text;
  }
  ::unlink(path.c_str());
}

TEST(CacheCliTest, StatsAndPurgeOnUnreadableDirExitThree) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root ignores permission bits; the access() gate cannot "
                    "trip";
  }
  const std::string dir = FreshDir("cache_cli_unreadable");
  ASSERT_EQ(::chmod(dir.c_str(), 0000), 0);
  for (const char* verb : {"stats", "purge"}) {
    const testing::ChildResult run =
        testing::RunGputc({"cache", verb, "--prep-cache", dir});
    EXPECT_EQ(run.exit_code, 3) << verb << ": " << run.stderr_text;
    EXPECT_NE(run.stderr_text.find("readable"), std::string::npos)
        << verb << ": " << run.stderr_text;
  }
  ASSERT_EQ(::chmod(dir.c_str(), 0755), 0);
}

TEST(CacheCliTest, StatsOnHealthyDirStillWorks) {
  const std::string dir = FreshDir("cache_cli_ok");
  const testing::ChildResult run =
      testing::RunGputc({"cache", "stats", "--prep-cache", dir});
  EXPECT_EQ(run.exit_code, 0) << run.stderr_text;
  EXPECT_NE(run.stdout_text.find("artifacts:"), std::string::npos)
      << run.stdout_text;
}

}  // namespace
}  // namespace gputc
