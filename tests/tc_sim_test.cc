#include <gtest/gtest.h>

#include <memory>

#include "direction/direction.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "tc/cpu_counters.h"
#include "tc/fox.h"
#include "tc/registry.h"

namespace gputc {
namespace {

std::vector<TcAlgorithm> AllAlgorithms() {
  return {TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kGunrockSortMerge,
          TcAlgorithm::kTriCore,             TcAlgorithm::kFox,
          TcAlgorithm::kBisson,              TcAlgorithm::kHu,
          TcAlgorithm::kPolak};
}

class SimCounterTest : public ::testing::TestWithParam<TcAlgorithm> {
 protected:
  DeviceSpec spec_ = DeviceSpec::TitanXpLike();
};

TEST_P(SimCounterTest, ExactOnFixtures) {
  const auto counter = MakeCounter(GetParam());
  struct Case {
    Graph graph;
    int64_t expected;
  };
  const Case cases[] = {
      {CompleteGraph(8), 56},   {CycleGraph(12), 0},
      {WheelGraph(9), 8},       {StarGraph(30), 0},
      {CompleteGraph(3), 1},    {GridGraph(4, 5), 0},
  };
  for (const Case& c : cases) {
    const DirectedGraph d = Orient(c.graph, DirectionStrategy::kDegreeBased);
    EXPECT_EQ(counter->Count(d, spec_).triangles, c.expected)
        << counter->name();
  }
}

TEST_P(SimCounterTest, MatchesCpuOnRandomGraphs) {
  const auto counter = MakeCounter(GetParam());
  for (uint64_t seed : {3u, 19u}) {
    const Graph g = GeneratePowerLawConfiguration(600, 2.0, 2, 120, seed);
    const int64_t expected = CountTrianglesNodeIterator(g);
    for (DirectionStrategy dir :
         {DirectionStrategy::kIdBased, DirectionStrategy::kADirection}) {
      const DirectedGraph d = Orient(g, dir);
      EXPECT_EQ(counter->Count(d, spec_).triangles, expected)
          << counter->name() << " " << ToString(dir);
    }
  }
}

TEST_P(SimCounterTest, ReportsNonTrivialKernelStats) {
  const auto counter = MakeCounter(GetParam());
  const Graph g = GenerateRmat(9, 8, 5);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const TcResult r = counter->Count(d, spec_);
  EXPECT_GT(r.kernel.cycles, 0.0);
  EXPECT_GT(r.kernel.millis, 0.0);
  EXPECT_GT(r.kernel.num_blocks, 0);
  EXPECT_GT(r.kernel.total_transactions, 0.0);
  EXPECT_GT(r.kernel.sm_utilization, 0.0);
  EXPECT_LE(r.kernel.sm_utilization, 1.0);
}

TEST_P(SimCounterTest, EmptyGraphIsZero) {
  const auto counter = MakeCounter(GetParam());
  const Graph g = Graph::FromEdgeList(EdgeList{});
  const DirectedGraph d = Orient(g, DirectionStrategy::kIdBased);
  const TcResult r = counter->Count(d, spec_);
  EXPECT_EQ(r.triangles, 0);
}

TEST_P(SimCounterTest, DeterministicCost) {
  const auto counter = MakeCounter(GetParam());
  const Graph g = GenerateErdosRenyi(300, 1500, 6);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  EXPECT_EQ(counter->Count(d, spec_).kernel.cycles,
            counter->Count(d, spec_).kernel.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SimCounterTest, ::testing::ValuesIn(AllAlgorithms()),
    [](const ::testing::TestParamInfo<TcAlgorithm>& info) {
      std::string name = ToString(info.param);
      std::erase(name, '-');
      return name;
    });

TEST(SimCounterMetaTest, InterfaceFlagsMatchPaper) {
  EXPECT_TRUE(MakeCounter(TcAlgorithm::kBisson)->uses_intra_block_sync());
  EXPECT_TRUE(MakeCounter(TcAlgorithm::kHu)->uses_intra_block_sync());
  EXPECT_FALSE(MakeCounter(TcAlgorithm::kTriCore)->uses_intra_block_sync());
  EXPECT_FALSE(MakeCounter(TcAlgorithm::kBisson)->uses_binary_search());
  EXPECT_TRUE(MakeCounter(TcAlgorithm::kTriCore)->uses_binary_search());
  EXPECT_EQ(MakeCounter(TcAlgorithm::kFox)->reorder_unit(),
            ReorderUnit::kEdge);
  EXPECT_EQ(MakeCounter(TcAlgorithm::kHu)->reorder_unit(),
            ReorderUnit::kVertex);
}

TEST(FoxEdgeOrderTest, ArbitraryEdgeOrderKeepsCountExact) {
  const Graph g = GeneratePowerLawConfiguration(500, 2.1, 2, 100, 8);
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const int64_t expected = CountTrianglesNodeIterator(g);
  const FoxCounter fox;
  // Reversed edge order.
  std::vector<int64_t> reversed(static_cast<size_t>(d.num_edges()));
  for (size_t i = 0; i < reversed.size(); ++i) {
    reversed[i] = static_cast<int64_t>(reversed.size() - 1 - i);
  }
  EXPECT_EQ(
      fox.CountWithEdgeOrder(d, DeviceSpec::TitanXpLike(), reversed).triangles,
      expected);
}

TEST(FoxEdgeOrderTest, WorkEstimatesMatchArcCount) {
  const Graph g = GenerateErdosRenyi(200, 800, 9);
  const DirectedGraph d = Orient(g, DirectionStrategy::kIdBased);
  const auto work = FoxCounter::ArcWorkEstimates(d);
  EXPECT_EQ(work.size(), static_cast<size_t>(d.num_edges()));
  for (int64_t w : work) EXPECT_GT(w, 0);
}

TEST(GunrockVariantsTest, BothStrategiesAgreeOnCount) {
  const Graph g = LoadDataset("email-Eucore");
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const auto bs = MakeCounter(TcAlgorithm::kGunrockBinarySearch)->Count(d, spec);
  const auto sm = MakeCounter(TcAlgorithm::kGunrockSortMerge)->Count(d, spec);
  EXPECT_EQ(bs.triangles, sm.triangles);
  EXPECT_NE(bs.kernel.cycles, sm.kernel.cycles);
}

}  // namespace
}  // namespace gputc
