#include <gtest/gtest.h>

#include <vector>

#include "sim/device.h"
#include "sim/memory.h"

namespace gputc {
namespace {

DeviceSpec Spec() { return DeviceSpec::TitanXpLike(); }

TEST(CoalescingTest, SameSegmentIsOneTransaction) {
  const DeviceSpec spec = Spec();
  // 32 elements of 4 bytes = 128 bytes = exactly one transaction.
  std::vector<int64_t> addrs;
  for (int64_t i = 0; i < 32; ++i) addrs.push_back(i);
  EXPECT_EQ(TransactionsForWarpAccess(addrs, spec), 1);
}

TEST(CoalescingTest, StridedAccessScatters) {
  const DeviceSpec spec = Spec();
  std::vector<int64_t> addrs;
  for (int64_t i = 0; i < 32; ++i) addrs.push_back(i * 1000);
  EXPECT_EQ(TransactionsForWarpAccess(addrs, spec), 32);
}

TEST(CoalescingTest, DuplicateAddressesMerge) {
  const DeviceSpec spec = Spec();
  const std::vector<int64_t> addrs(32, 12345);
  EXPECT_EQ(TransactionsForWarpAccess(addrs, spec), 1);
  EXPECT_EQ(TransactionsForWarpAccess({}, spec), 0);
}

TEST(ProbesTest, LogarithmicGrowth) {
  EXPECT_EQ(ProbesForBinarySearch(0), 0);
  EXPECT_EQ(ProbesForBinarySearch(1), 1);
  EXPECT_EQ(ProbesForBinarySearch(2), 2);
  EXPECT_EQ(ProbesForBinarySearch(1024), 11);
}

TEST(ThreadSearchTest, ShortListIsOneTransaction) {
  const DeviceSpec spec = Spec();
  // Lists within one 32-element segment: a single transaction (Figure 4).
  EXPECT_EQ(ThreadBinarySearchTransactions(1, spec), 1);
  EXPECT_EQ(ThreadBinarySearchTransactions(32, spec), 1);
}

TEST(ThreadSearchTest, LongListsCostMore) {
  const DeviceSpec spec = Spec();
  const int64_t t256 = ThreadBinarySearchTransactions(256, spec);
  const int64_t t4096 = ThreadBinarySearchTransactions(4096, spec);
  EXPECT_GT(t256, 1);
  EXPECT_GT(t4096, t256);
  // Growth is logarithmic, not linear.
  EXPECT_LE(t4096, t256 + 5);
}

TEST(ThreadSearchTest, MonotoneInLength) {
  const DeviceSpec spec = Spec();
  int64_t prev = 0;
  for (int64_t len = 1; len <= (1 << 16); len *= 2) {
    const int64_t t = ThreadBinarySearchTransactions(len, spec);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(WarpSharedSearchTest, CoalescesOnShortLists) {
  const DeviceSpec spec = Spec();
  // Whole list inside one segment: every probe level costs one transaction.
  const int64_t t = WarpSharedListSearchTransactions(16, 32, spec);
  EXPECT_EQ(t, ProbesForBinarySearch(16));
}

TEST(WarpSharedSearchTest, DivergesOnLongLists) {
  const DeviceSpec spec = Spec();
  const int64_t short_list = WarpSharedListSearchTransactions(32, 32, spec);
  const int64_t long_list =
      WarpSharedListSearchTransactions(1 << 14, 32, spec);
  EXPECT_GT(long_list, 4 * short_list);
}

TEST(WarpDistinctListsTest, PacksShortListsPerSegment) {
  const DeviceSpec spec = Spec();
  // Lists of length 4: 8 lists per 32-element segment -> 4 transactions for
  // 32 lanes.
  EXPECT_EQ(WarpDistinctListsTransactionsPerProbe(4, 32, spec), 4);
  // Long lists: one transaction per lane.
  EXPECT_EQ(WarpDistinctListsTransactionsPerProbe(1000, 32, spec), 32);
  EXPECT_EQ(WarpDistinctListsTransactionsPerProbe(0, 32, spec), 0);
}

TEST(BandwidthProfilerTest, BandwidthGrowsWithListLength) {
  const BandwidthProfiler profiler(Spec());
  // The paper's Figure 8: memory bandwidth consumption is positively
  // correlated with adjacency list length (saturating once every lane
  // occupies its own segment).
  double prev = 0.0;
  for (int64_t len = 1; len <= (1 << 12); len *= 2) {
    const double bw = profiler.BandwidthAt(len);
    EXPECT_GE(bw, prev - 1e-9) << "len=" << len;
    prev = bw;
  }
  EXPECT_GT(profiler.BandwidthAt(1 << 12), 1.5 * profiler.BandwidthAt(1));
}

TEST(BandwidthProfilerTest, SweepIsDeterministicAndComplete) {
  const BandwidthProfiler profiler(Spec());
  const auto sweep1 = profiler.Sweep(1024);
  const auto sweep2 = profiler.Sweep(1024);
  ASSERT_EQ(sweep1.size(), 11u);  // 1, 2, 4, ..., 1024.
  for (size_t i = 0; i < sweep1.size(); ++i) {
    EXPECT_EQ(sweep1[i].bytes_per_cycle, sweep2[i].bytes_per_cycle);
    EXPECT_GT(sweep1[i].probes_per_search, 0.0);
  }
}

}  // namespace
}  // namespace gputc
