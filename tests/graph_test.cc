#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"

namespace gputc {
namespace {

Graph Triangle() {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(0, 2);
  return Graph::FromEdgeList(std::move(list));
}

TEST(GraphTest, EmptyGraph) {
  const Graph g = Graph::FromEdgeList(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.MaxDegree(), 0);
  EXPECT_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, TriangleBasics) {
  const Graph g = Triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
}

TEST(GraphTest, AdjacencyIsSorted) {
  EdgeList list;
  list.Add(0, 5);
  list.Add(0, 2);
  list.Add(0, 9);
  list.Add(0, 1);
  const Graph g = Graph::FromEdgeList(std::move(list));
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphTest, HasEdgeOutOfRangeIsFalse) {
  const Graph g = Triangle();
  EXPECT_FALSE(g.HasEdge(0, 99));
  EXPECT_FALSE(g.HasEdge(99, 0));
}

TEST(GraphTest, ToEdgeListRoundTrip) {
  const Graph g = GenerateErdosRenyi(100, 300, /*seed=*/5);
  const Graph h = Graph::FromEdgeList(g.ToEdgeList());
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), h.degree(v));
  }
}

TEST(GraphTest, IsolatedVerticesPreserved) {
  EdgeList list;
  list.Add(0, 1);
  list.set_num_vertices(5);
  const Graph g = Graph::FromEdgeList(std::move(list));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0);
  EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(GraphTest, MaxDegreeOfStar) {
  const Graph g = StarGraph(10);
  EXPECT_EQ(g.MaxDegree(), 9);
  EXPECT_EQ(g.degree(0), 9);
  EXPECT_EQ(g.degree(5), 1);
}

TEST(GraphTest, CsrOffsetsConsistent) {
  const Graph g = GenerateErdosRenyi(50, 120, /*seed=*/3);
  EXPECT_EQ(g.offsets().size(), 51u);
  EXPECT_EQ(g.offsets().front(), 0);
  EXPECT_EQ(g.offsets().back(), 2 * g.num_edges());
  EXPECT_TRUE(std::is_sorted(g.offsets().begin(), g.offsets().end()));
}

}  // namespace
}  // namespace gputc
