#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.h"

namespace gputc {
namespace {

BlockCost MakeBlock(double cycles) {
  BlockCost b;
  b.cycles = cycles;
  b.total_ops = cycles;
  return b;
}

TEST(KernelLauncherTest, EmptyLaunch) {
  const KernelLauncher launcher(DeviceSpec::TitanXpLike());
  const KernelStats stats = launcher.Launch({});
  EXPECT_EQ(stats.cycles, 0.0);
  EXPECT_EQ(stats.num_blocks, 0);
}

TEST(KernelLauncherTest, SingleBlockMakespan) {
  const KernelLauncher launcher(DeviceSpec::TitanXpLike());
  const KernelStats stats = launcher.Launch({MakeBlock(100.0)});
  EXPECT_DOUBLE_EQ(stats.cycles, 100.0);
  EXPECT_EQ(stats.num_blocks, 1);
  EXPECT_GT(stats.millis, 0.0);
}

TEST(KernelLauncherTest, PerfectlyParallelBlocks) {
  DeviceSpec spec = DeviceSpec::TitanXpLike();
  spec.num_sms = 4;
  const KernelLauncher launcher(spec);
  const std::vector<BlockCost> blocks(8, MakeBlock(50.0));
  const KernelStats stats = launcher.Launch(blocks);
  // 8 equal blocks over 4 SMs: two rounds.
  EXPECT_DOUBLE_EQ(stats.cycles, 100.0);
  EXPECT_DOUBLE_EQ(stats.sm_utilization, 1.0);
}

TEST(KernelLauncherTest, StragglerDominatesMakespan) {
  DeviceSpec spec = DeviceSpec::TitanXpLike();
  spec.num_sms = 4;
  const KernelLauncher launcher(spec);
  std::vector<BlockCost> blocks(4, MakeBlock(10.0));
  blocks.push_back(MakeBlock(1000.0));
  const KernelStats stats = launcher.Launch(blocks);
  // Greedy: the big block starts after a 10-cycle one finishes.
  EXPECT_DOUBLE_EQ(stats.cycles, 1010.0);
  EXPECT_LT(stats.sm_utilization, 0.5);
}

TEST(KernelLauncherTest, GreedyAssignsToFirstFreeSm) {
  DeviceSpec spec = DeviceSpec::TitanXpLike();
  spec.num_sms = 2;
  const KernelLauncher launcher(spec);
  // Blocks 100, 10, 10, 10: SM0 takes 100; SM1 takes the three 10s.
  const KernelStats stats = launcher.Launch(
      {MakeBlock(100.0), MakeBlock(10.0), MakeBlock(10.0), MakeBlock(10.0)});
  EXPECT_DOUBLE_EQ(stats.cycles, 100.0);
}

TEST(KernelLauncherTest, AggregatesBlockTotals) {
  const KernelLauncher launcher(DeviceSpec::TitanXpLike());
  BlockCost b;
  b.cycles = 10.0;
  b.total_ops = 5.0;
  b.total_transactions = 7.0;
  b.supersteps = 2;
  const KernelStats stats = launcher.Launch({b, b, b});
  EXPECT_DOUBLE_EQ(stats.total_ops, 15.0);
  EXPECT_DOUBLE_EQ(stats.total_transactions, 21.0);
  EXPECT_EQ(stats.supersteps, 6);
}

TEST(KernelStatsTest, AccumulateSumsSequentialLaunches) {
  KernelStats a;
  a.cycles = 100.0;
  a.millis = 1.0;
  a.num_blocks = 2;
  a.sm_utilization = 0.5;
  KernelStats b;
  b.cycles = 300.0;
  b.millis = 3.0;
  b.num_blocks = 4;
  b.sm_utilization = 1.0;
  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.cycles, 400.0);
  EXPECT_DOUBLE_EQ(a.millis, 4.0);
  EXPECT_EQ(a.num_blocks, 6);
  // Busy-weighted mean utilization: (0.5*100 + 1.0*300) / 400.
  EXPECT_DOUBLE_EQ(a.sm_utilization, 0.875);
}

}  // namespace
}  // namespace gputc
