#include <gtest/gtest.h>

#include "graph/generators.h"
#include "order/classic_orders.h"

namespace gputc {
namespace {

TEST(DegreeOrderTest, SortsDescending) {
  const Graph g = StarGraph(5);
  const Permutation perm = DegreeOrder(g);
  // Hub (degree 4) gets new id 0; leaves keep id-order after it.
  EXPECT_EQ(perm[0], 0u);
  EXPECT_EQ(perm[1], 1u);
  EXPECT_EQ(perm[4], 4u);
}

TEST(DfsOrderTest, FollowsDiscoveryOrder) {
  const Graph g = PathGraph(5);
  const Permutation perm = DfsOrder(g);
  // DFS from 0 on a path discovers vertices in path order.
  EXPECT_EQ(perm, IdentityPermutation(5));
}

TEST(DfsOrderTest, CoversDisconnectedComponents) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(3, 4);
  list.set_num_vertices(6);
  const Graph g = Graph::FromEdgeList(std::move(list));
  const Permutation perm = DfsOrder(g);
  EXPECT_TRUE(IsPermutation(perm));
}

TEST(BfsROrderTest, ValidOnVariedGraphs) {
  for (const Graph& g :
       {GenerateErdosRenyi(500, 1500, 61), GenerateWattsStrogatz(400, 4, 0.1, 62),
        StarGraph(100), PathGraph(200)}) {
    EXPECT_TRUE(IsPermutation(BfsROrder(g)));
  }
}

TEST(BfsROrderTest, KeepsBfsNeighborhoodsTogether) {
  // On a long path, BFS-R should place the two halves contiguously: the
  // average |perm[v] - perm[v+1]| stays small.
  const Graph g = PathGraph(256);
  const Permutation perm = BfsROrder(g);
  double total_gap = 0.0;
  for (VertexId v = 0; v + 1 < 256; ++v) {
    total_gap += std::abs(static_cast<double>(perm[v]) -
                          static_cast<double>(perm[v + 1]));
  }
  EXPECT_LT(total_gap / 255.0, 16.0);
}

TEST(SlashBurnOrderTest, HubsGetLowestIds) {
  const Graph g = GeneratePowerLawConfiguration(2000, 2.0, 1, 300, 63);
  const Permutation perm = SlashBurnOrder(g, 0.01);
  ASSERT_TRUE(IsPermutation(perm));
  // The first removed batch is the top-degree hubs: the single highest
  // degree vertex must be near the very front.
  VertexId top = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(top)) top = v;
  }
  EXPECT_LT(perm[top], 20u);
}

TEST(SlashBurnOrderTest, ValidOnEdgeCases) {
  EXPECT_TRUE(IsPermutation(SlashBurnOrder(StarGraph(50))));
  EXPECT_TRUE(IsPermutation(SlashBurnOrder(CompleteGraph(10))));
  // Isolated vertices.
  EdgeList list;
  list.Add(0, 1);
  list.set_num_vertices(5);
  EXPECT_TRUE(
      IsPermutation(SlashBurnOrder(Graph::FromEdgeList(std::move(list)))));
}

TEST(GroOrderTest, PlacesOverlappingNeighborhoodsTogether) {
  const Graph g = GenerateErdosRenyi(300, 1200, 64);
  const Permutation perm = GroOrder(g);
  ASSERT_TRUE(IsPermutation(perm));
}

TEST(GroOrderTest, CliqueStaysContiguous) {
  // Two 5-cliques joined by one edge: each clique should occupy a
  // contiguous id range (the greedy always has an in-clique candidate with
  // more placed neighbors than anything across the bridge).
  EdgeList list;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      list.Add(u, v);
      list.Add(5 + u, 5 + v);
    }
  }
  list.Add(4, 5);
  const Graph g = Graph::FromEdgeList(std::move(list));
  const Permutation perm = GroOrder(g);
  VertexId max_first = 0, min_first = 10, max_second = 0, min_second = 10;
  for (VertexId v = 0; v < 5; ++v) {
    max_first = std::max(max_first, perm[v]);
    min_first = std::min(min_first, perm[v]);
  }
  for (VertexId v = 5; v < 10; ++v) {
    max_second = std::max(max_second, perm[v]);
    min_second = std::min(min_second, perm[v]);
  }
  // One clique fully precedes the other.
  EXPECT_TRUE(max_first < min_second || max_second < min_first);
  EXPECT_TRUE(IsPermutation(perm));
}

TEST(BfsOrderTest, LayersThePath) {
  const Graph g = PathGraph(6);
  EXPECT_EQ(BfsOrder(g), IdentityPermutation(6));
}

TEST(BfsOrderTest, ValidOnDisconnected) {
  EdgeList list;
  list.Add(0, 1);
  list.set_num_vertices(4);
  EXPECT_TRUE(IsPermutation(BfsOrder(Graph::FromEdgeList(std::move(list)))));
}

TEST(RcmOrderTest, ReducesPathBandwidth) {
  // On a path, RCM keeps neighbors adjacent in the ordering.
  const Graph g = PathGraph(64);
  const Permutation perm = RcmOrder(g);
  ASSERT_TRUE(IsPermutation(perm));
  for (VertexId v = 0; v + 1 < 64; ++v) {
    const int64_t gap = std::abs(static_cast<int64_t>(perm[v]) -
                                 static_cast<int64_t>(perm[v + 1]));
    EXPECT_EQ(gap, 1);
  }
}

TEST(RcmOrderTest, ValidOnVariedGraphs) {
  for (const Graph& g :
       {GenerateErdosRenyi(400, 1200, 71), StarGraph(50),
        GeneratePowerLawConfiguration(500, 2.0, 1, 80, 72)}) {
    EXPECT_TRUE(IsPermutation(RcmOrder(g)));
  }
}

TEST(RandomOrderTest, SeededAndValid) {
  const Permutation a = RandomOrder(100, 7);
  const Permutation b = RandomOrder(100, 7);
  const Permutation c = RandomOrder(100, 8);
  EXPECT_TRUE(IsPermutation(a));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace gputc
