// Corpus-style tests feeding crafted, corrupt, and adversarial inputs
// through the Status-returning loaders. Every case asserts a precise error
// code and a context-bearing message — and, run under ASan/UBSan, that no
// crafted header can cause an out-of-bounds access or runaway allocation.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/validate.h"
#include "util/durable_file.h"

namespace gputc {
namespace {

constexpr uint64_t kMagic = 0x43545550'47525048ull;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Writes a crafted binary graph file from raw parts.
void WriteCrafted(const std::string& path, uint64_t magic, uint64_t n,
                  uint64_t m, const std::vector<EdgeCount>& offsets,
                  const std::vector<VertexId>& adj,
                  const std::string& trailing = "") {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out);
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(EdgeCount)));
  out.write(reinterpret_cast<const char*>(adj.data()),
            static_cast<std::streamsize>(adj.size() * sizeof(VertexId)));
  out << trailing;
}

class CorruptFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Path(const std::string& name) {
    const std::string p = TempPath(name);
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(CorruptFileTest, TruncatedHeader) {
  const std::string path = Path("trunc_header.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "GPUT";  // 4 bytes, header needs 24.
  }
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("truncated header"), std::string::npos);
  EXPECT_NE(g.status().message().find(path), std::string::npos);
}

TEST_F(CorruptFileTest, BadMagic) {
  const std::string path = Path("bad_magic.bin");
  WriteCrafted(path, /*magic=*/0xDEADBEEFull, 2, 1, {0, 1, 2}, {1, 0});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("bad magic"), std::string::npos);
  EXPECT_NE(g.status().message().find("0xdeadbeef"), std::string::npos);
}

TEST_F(CorruptFileTest, HugeVertexCountRejectedBeforeAllocation) {
  // A 24-byte file claiming 2^40 vertices would imply an 8 TiB offsets
  // allocation; the loader must reject on the header alone.
  const std::string path = Path("huge_n.bin");
  WriteCrafted(path, kMagic, /*n=*/1ull << 40, /*m=*/1, {}, {});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(g.status().message().find("vertex count"), std::string::npos);
}

TEST_F(CorruptFileTest, HugeEdgeCountRejectedBeforeAllocation) {
  const std::string path = Path("huge_m.bin");
  WriteCrafted(path, kMagic, /*n=*/2, /*m=*/1ull << 60, {}, {});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(g.status().message().find("edge count"), std::string::npos);
}

TEST_F(CorruptFileTest, PayloadShorterThanHeaderImplies) {
  const std::string path = Path("short_payload.bin");
  // Header says n=4, m=10 but carries a payload for a much smaller graph.
  WriteCrafted(path, kMagic, /*n=*/4, /*m=*/10, {0, 1, 2}, {1, 0});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("but the file is"), std::string::npos);
}

TEST_F(CorruptFileTest, TrailingGarbageRejected) {
  const std::string path = Path("trailing.bin");
  WriteCrafted(path, kMagic, /*n=*/2, /*m=*/1, {0, 1, 2}, {1, 0},
               /*trailing=*/"extra");
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
}

TEST_F(CorruptFileTest, NonMonotonicOffsets) {
  const std::string path = Path("nonmono.bin");
  WriteCrafted(path, kMagic, /*n=*/3, /*m=*/2, {0, 3, 2, 4}, {1, 2, 0, 0});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("not monotonic"), std::string::npos);
}

TEST_F(CorruptFileTest, OffsetsTotalDisagreesWithEdgeCount) {
  const std::string path = Path("bad_total.bin");
  // offsets[n] = 3 but the header promises 2*m = 4 adjacency entries. The
  // adjacency array still has 4 entries so the file size matches the header
  // and only the offsets check can catch it.
  WriteCrafted(path, kMagic, /*n=*/3, /*m=*/2, {0, 1, 2, 3}, {1, 0, 1, 0});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("2*m"), std::string::npos);
}

TEST_F(CorruptFileTest, NegativeOffsetRejected) {
  const std::string path = Path("neg_offset.bin");
  WriteCrafted(path, kMagic, /*n=*/2, /*m=*/1, {-4, 1, 2}, {1, 0});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("offsets[0]"), std::string::npos);
}

TEST_F(CorruptFileTest, OutOfRangeVertexId) {
  const std::string path = Path("oob_adj.bin");
  // Would have been an out-of-bounds CSR indexing crash in the unhardened
  // loader: vertex id 999 in a 3-vertex graph.
  WriteCrafted(path, kMagic, /*n=*/3, /*m=*/2, {0, 2, 3, 4}, {1, 999, 0, 0});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("adjacency[1]"), std::string::npos);
  EXPECT_NE(g.status().message().find("999"), std::string::npos);
}

TEST_F(CorruptFileTest, NonCanonicalCsrRejectedStrictButRepairable) {
  const std::string path = Path("self_loop.bin");
  // Structurally sound CSR containing a doubled self loop: row 0 = [0, 0],
  // row 1 = [2], row 2 = [1]. Strict load refuses; the doctor flow repairs.
  WriteCrafted(path, kMagic, /*n=*/3, /*m=*/2, {0, 2, 3, 4}, {0, 0, 2, 1});
  const StatusOr<Graph> strict = LoadBinary(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(strict.status().message().find("not canonical"),
            std::string::npos);

  StatusOr<EdgeList> raw = LoadBinaryEdgeList(path);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  const GraphDoctor doctor;
  const ValidationReport report = doctor.Examine(*raw);
  EXPECT_FALSE(report.clean());
  const StatusOr<Graph> repaired =
      doctor.BuildGraph(*std::move(raw), RepairPolicy::kRepair);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(repaired->num_vertices(), 3u);
  EXPECT_EQ(repaired->num_edges(), 1);  // Only (1, 2) survives.
}

TEST_F(CorruptFileTest, ValidFileStillRoundTrips) {
  const Graph g = GenerateErdosRenyi(60, 150, /*seed=*/7);
  const std::string path = Path("valid.bin");
  ASSERT_TRUE(SaveBinary(g, path));
  const StatusOr<Graph> h = LoadBinary(path);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->offsets(), g.offsets());
  EXPECT_EQ(h->adjacency(), g.adjacency());
}

TEST_F(CorruptFileTest, MissingBinaryIsNotFound) {
  const StatusOr<Graph> g = LoadBinary("/nonexistent/graph.bin");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
  EXPECT_NE(g.status().message().find("/nonexistent/graph.bin"),
            std::string::npos);
}

TEST(CorruptSnapTest, MalformedLineNamesTheLine) {
  std::istringstream in("# header\n0 1\nnot numbers\n");
  const StatusOr<Graph> g = ReadSnapText(in);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(g.status().message().find("not numbers"), std::string::npos);
}

TEST(CorruptSnapTest, MissingSecondEndpoint) {
  std::istringstream in("0 1\n17\n");
  const StatusOr<Graph> g = ReadSnapText(in);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(CorruptSnapTest, OverflowingVertexToken) {
  std::istringstream in("0 1\n99999999999999999999999999 1\n");
  const StatusOr<Graph> g = ReadSnapText(in);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(CorruptSnapTest, MissingFileIsNotFoundWithPath) {
  const StatusOr<Graph> g = LoadSnapText("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
  EXPECT_NE(g.status().message().find("/nonexistent/path/graph.txt"),
            std::string::npos);
}

TEST(CorruptSnapTest, ParseErrorCarriesFileContext) {
  const std::string path = TempPath("bad_line.txt");
  {
    std::ofstream out(path);
    out << "0 1\ngarbage here\n";
  }
  const StatusOr<Graph> g = LoadSnapText(path);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find(path), std::string::npos);
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CorruptSnapTest, RawEdgeListPreservesDefectsForDoctor) {
  std::istringstream in("0 0\n1 2\n2 1\n");
  StatusOr<EdgeList> list = ReadSnapEdgeList(in);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_EQ(list->num_edges(), 3);  // Loop and both duplicates kept.
  const ValidationReport report = GraphDoctor().Examine(*list);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.Summary().find("self-loop"), std::string::npos);
  EXPECT_NE(report.Summary().find("duplicate-edge"), std::string::npos);
}

// -- v2 corrupt corpus ------------------------------------------------------
//
// SaveBinary writes the checksummed v2 format; every test here starts from a
// valid v2 file and injects one precise defect, asserting the loader names
// it in the Status instead of crashing or returning a silently-wrong graph.

constexpr size_t kV2HeaderBytes = 48;
constexpr size_t kV2HeaderCrcOffset = 44;

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Recomputes the header CRC after a deliberate header edit, so the test
/// reaches the check *behind* the CRC (version, finalized flag, counts).
void ResealHeader(std::string* bytes) {
  const uint32_t crc = Crc32c(bytes->data(), kV2HeaderCrcOffset);
  for (int i = 0; i < 4; ++i) {
    (*bytes)[kV2HeaderCrcOffset + i] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

class CorruptV2Test : public CorruptFileTest {
 protected:
  /// Saves a small graph in v2 format and returns its path + bytes.
  std::string SaveValid(const std::string& name, std::string* bytes) {
    const std::string path = Path(name);
    const Graph g = GenerateErdosRenyi(40, 120, /*seed=*/3);
    EXPECT_TRUE(SaveBinaryDurable(g, path).ok());
    *bytes = SlurpFile(path);
    EXPECT_GE(bytes->size(), kV2HeaderBytes);
    return path;
  }

  void ExpectDataLossContaining(const std::string& path,
                                const std::string& fragment) {
    const StatusOr<Graph> g = LoadBinary(path);
    ASSERT_FALSE(g.ok()) << "loader accepted a corrupt file";
    EXPECT_EQ(g.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(g.status().message().find(fragment), std::string::npos)
        << g.status().ToString();
    EXPECT_NE(g.status().message().find(path), std::string::npos)
        << "error must carry the file path: " << g.status().ToString();
  }
};

TEST_F(CorruptV2Test, HeaderBitFlipIsHeaderCrcMismatch) {
  std::string bytes;
  const std::string path = SaveValid("v2_header_flip.bin", &bytes);
  bytes[20] ^= 0x01;  // Inside the n field.
  WriteBytes(path, bytes);
  ExpectDataLossContaining(path, "header CRC mismatch");
}

TEST_F(CorruptV2Test, UnfinalizedFileIsRejectedAsTorn) {
  std::string bytes;
  const std::string path = SaveValid("v2_unfinalized.bin", &bytes);
  bytes[12] = 0;  // Clear the finalized flag...
  ResealHeader(&bytes);  // ...with a valid CRC, as a torn writer would leave.
  WriteBytes(path, bytes);
  ExpectDataLossContaining(path, "never finalized");
}

TEST_F(CorruptV2Test, FutureVersionIsRejectedByName) {
  std::string bytes;
  const std::string path = SaveValid("v2_future_version.bin", &bytes);
  bytes[8] = 3;
  ResealHeader(&bytes);
  WriteBytes(path, bytes);
  ExpectDataLossContaining(path, "unsupported binary format version 3");
}

TEST_F(CorruptV2Test, OffsetsBitFlipIsOffsetsCrcMismatch) {
  std::string bytes;
  const std::string path = SaveValid("v2_offsets_flip.bin", &bytes);
  bytes[kV2HeaderBytes + 9] ^= 0x10;
  WriteBytes(path, bytes);
  ExpectDataLossContaining(path, "CSR offsets CRC mismatch");
}

TEST_F(CorruptV2Test, AdjacencyBitFlipIsAdjacencyCrcMismatch) {
  std::string bytes;
  const std::string path = SaveValid("v2_adj_flip.bin", &bytes);
  // Flip a bit in the adjacency section without changing vertex range
  // validity: the CRC must catch it even when the value still "looks" valid.
  bytes[bytes.size() - 3] ^= 0x02;
  WriteBytes(path, bytes);
  ExpectDataLossContaining(path, "CSR adjacency CRC mismatch");
}

TEST_F(CorruptV2Test, TruncatedPayloadNamesTheSizes) {
  std::string bytes;
  const std::string path = SaveValid("v2_trunc_payload.bin", &bytes);
  WriteBytes(path, bytes.substr(0, bytes.size() - 7));
  ExpectDataLossContaining(path, "but the file is");
}

TEST_F(CorruptV2Test, TruncatedHeaderIsRejected) {
  std::string bytes;
  const std::string path = SaveValid("v2_trunc_header.bin", &bytes);
  WriteBytes(path, bytes.substr(0, kV2HeaderBytes / 2));
  ExpectDataLossContaining(path, "truncated v2 header");
}

TEST_F(CorruptV2Test, UnknownMagicNamesBothFormats) {
  const std::string path = Path("v2_bad_magic.bin");
  std::string bytes(64, '\x5a');
  WriteBytes(path, bytes);
  ExpectDataLossContaining(path, "bad magic");
}

TEST_F(CorruptV2Test, LegacyV1FileStillLoads) {
  // The v1 writer is gone, so craft its format by hand: {magic, n, m},
  // offsets, adjacency — a 3-path 0-1-2.
  const std::string path = Path("legacy_v1.bin");
  WriteCrafted(path, kMagic, /*n=*/3, /*m=*/2, {0, 1, 3, 4}, {1, 0, 2, 1});
  const StatusOr<Graph> g = LoadBinary(path);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(LoadGraphDispatchTest, ErrorsOnEitherFormatCarryContext) {
  const StatusOr<Graph> bin = LoadGraph("/nonexistent/g.bin");
  ASSERT_FALSE(bin.ok());
  EXPECT_EQ(bin.status().code(), StatusCode::kNotFound);
  const StatusOr<Graph> txt = LoadGraph("/nonexistent/g.txt");
  ASSERT_FALSE(txt.ok());
  EXPECT_EQ(txt.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace gputc
