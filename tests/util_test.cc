#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/flags.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace gputc {
namespace {

TEST(SummarizeTest, EmptyInput) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, BasicStatistics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(FitLineTest, PerfectLine) {
  const LinearFit fit = FitLine({1.0, 2.0, 3.0}, {3.0, 5.0, 7.0});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, ConstantXFallsBackToMean) {
  const LinearFit fit = FitLine({2.0, 2.0, 2.0}, {1.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 3.0);
}

TEST(FitLineTest, NoisyLineHasReasonableR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  h.Add(5.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(4), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.total(), 3);
  EXPECT_DOUBLE_EQ(h.BucketLo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketLo(4), 8.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
  EXPECT_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next64() != b.Next64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(FlagParserTest, ParsesEqualsAndSpaceSyntax) {
  const char* argv[] = {"prog", "--nodes=100", "--name", "gowalla", "pos1",
                        "--flag"};
  FlagParser flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("nodes", 0), 100);
  EXPECT_EQ(flags.GetString("name", ""), "gowalla");
  EXPECT_TRUE(flags.GetBool("flag", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.GetInt("absent", 7), 7);
}

TEST(FlagParserTest, DoubleParsing) {
  const char* argv[] = {"prog", "--gamma=2.5"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("gamma", 0.0), 2.5);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.AddRow({"xxxxxx", "1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("a       long-header"), std::string::npos);
  EXPECT_NE(s.find("xxxxxx  1"), std::string::npos);
}

TEST(FormattersTest, Fmt) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
}

TEST(FormattersTest, FmtCount) {
  EXPECT_EQ(FmtCount(0), "0");
  EXPECT_EQ(FmtCount(999), "999");
  EXPECT_EQ(FmtCount(1000), "1,000");
  EXPECT_EQ(FmtCount(1234567), "1,234,567");
  EXPECT_EQ(FmtCount(-1234), "-1,234");
}

TEST(FormattersTest, Percent) {
  EXPECT_EQ(Percent(0.25), "+25.0%");
  EXPECT_EQ(Percent(-0.091), "-9.1%");
}

}  // namespace
}  // namespace gputc
