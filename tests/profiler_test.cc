#include <gtest/gtest.h>

#include "direction/direction.h"
#include "graph/datasets.h"
#include "sim/profiler.h"
#include "tc/registry.h"

namespace gputc {
namespace {

KernelStats MakeStats(double compute, double global, double shared,
                      double sync, double utilization) {
  KernelStats stats;
  stats.compute_cycles = compute;
  stats.memory_cycles = global;
  stats.shared_cycles = shared;
  stats.sync_cycles = sync;
  stats.sm_utilization = utilization;
  stats.cycles = compute + global + shared + sync;
  stats.millis = stats.cycles / 1.4e6;
  stats.num_blocks = 10;
  stats.supersteps = 20;
  stats.total_ops = 1000;
  stats.total_transactions = 100;
  return stats;
}

TEST(ProfilerTest, ClassifiesDominantResource) {
  EXPECT_EQ(ProfileKernel(MakeStats(100, 10, 5, 1, 0.9)).bottleneck,
            KernelBottleneck::kCompute);
  EXPECT_EQ(ProfileKernel(MakeStats(10, 100, 5, 1, 0.9)).bottleneck,
            KernelBottleneck::kGlobalMemory);
  EXPECT_EQ(ProfileKernel(MakeStats(10, 5, 100, 1, 0.9)).bottleneck,
            KernelBottleneck::kSharedMemory);
  EXPECT_EQ(ProfileKernel(MakeStats(10, 5, 1, 100, 0.9)).bottleneck,
            KernelBottleneck::kSynchronization);
}

TEST(ProfilerTest, LowUtilizationTrumpsResources) {
  const KernelReport report = ProfileKernel(MakeStats(100, 10, 5, 1, 0.2));
  EXPECT_EQ(report.bottleneck, KernelBottleneck::kLoadImbalance);
}

TEST(ProfilerTest, IdleKernel) {
  KernelStats stats;
  const KernelReport report = ProfileKernel(stats);
  EXPECT_EQ(report.bottleneck, KernelBottleneck::kIdle);
  EXPECT_EQ(report.bottleneck_fraction, 0.0);
}

TEST(ProfilerTest, DerivedRatios) {
  const KernelReport report = ProfileKernel(MakeStats(100, 10, 5, 1, 0.9));
  EXPECT_DOUBLE_EQ(report.ops_per_transaction, 10.0);
  EXPECT_DOUBLE_EQ(report.supersteps_per_block, 2.0);
  EXPECT_NEAR(report.bottleneck_fraction, 100.0 / 116.0, 1e-12);
}

TEST(ProfilerTest, NamesAreStable) {
  EXPECT_EQ(ToString(KernelBottleneck::kCompute), "compute");
  EXPECT_EQ(ToString(KernelBottleneck::kGlobalMemory), "global-memory");
  EXPECT_EQ(ToString(KernelBottleneck::kLoadImbalance), "load-imbalance");
}

TEST(ProfilerTest, RealKernelReportsSaneValues) {
  const Graph g = LoadDataset("gowalla");
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const TcResult r = MakeCounter(TcAlgorithm::kHu)->Count(
      d, DeviceSpec::TitanXpLike());
  const KernelReport report = ProfileKernel(r.kernel);
  EXPECT_NE(report.bottleneck, KernelBottleneck::kIdle);
  EXPECT_GT(report.ops_per_transaction, 0.0);
  EXPECT_GT(report.supersteps_per_block, 0.0);  // Hu is a BSP kernel.
  const std::string text = FormatKernelReport(r.kernel);
  EXPECT_NE(text.find("bottleneck"), std::string::npos);
  EXPECT_NE(text.find("sm utilization"), std::string::npos);
}

TEST(ProfilerTest, BspVsNonBspSuperstepCounts) {
  const Graph g = LoadDataset("email-Eucore");
  const DirectedGraph d = Orient(g, DirectionStrategy::kDegreeBased);
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const KernelReport hu =
      ProfileKernel(MakeCounter(TcAlgorithm::kHu)->Count(d, spec).kernel);
  const KernelReport tricore = ProfileKernel(
      MakeCounter(TcAlgorithm::kTriCore)->Count(d, spec).kernel);
  EXPECT_GT(hu.supersteps_per_block, 0.0);
  EXPECT_EQ(tricore.supersteps_per_block, 0.0);
}

}  // namespace
}  // namespace gputc
