// Differential harness: every simulated counter, across direction and
// ordering strategies, must agree with the exact brute-force count on a
// corpus of structurally diverse graphs. This is the paper's core
// correctness claim (preprocessing never changes the triangle count, and
// all seven kernel models count the same set), checked exhaustively.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/trace.h"
#include "tc/cpu_counters.h"
#include "tc/registry.h"

namespace gputc {
namespace {

struct CorpusEntry {
  std::string name;
  Graph graph;
};

Graph StarOn64() {
  EdgeList list(64);
  for (VertexId leaf = 1; leaf < 64; ++leaf) list.Add(0, leaf);
  list.Normalize();
  return Graph::FromEdgeList(std::move(list));
}

/// Five 5-cliques chained by a bridge edge between consecutive cliques:
/// dense pockets (every counter's triangle-heavy path) joined by
/// triangle-free bridges.
Graph CliqueChain() {
  EdgeList list(25);
  for (VertexId clique = 0; clique < 5; ++clique) {
    const VertexId base = clique * 5;
    for (VertexId i = 0; i < 5; ++i) {
      for (VertexId j = i + 1; j < 5; ++j) {
        list.Add(base + i, base + j);
      }
    }
    if (clique > 0) list.Add(base - 1, base);
  }
  list.Normalize();
  return Graph::FromEdgeList(std::move(list));
}

Graph SingleEdge() {
  EdgeList list(2);
  list.Add(0, 1);
  return Graph::FromEdgeList(std::move(list));
}

std::vector<CorpusEntry> Corpus() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(
      {"power-law", GeneratePowerLawConfiguration(300, 2.3, 2, 40, 11)});
  corpus.push_back({"uniform", GenerateErdosRenyi(200, 800, 12)});
  corpus.push_back({"star", StarOn64()});
  corpus.push_back({"clique-chain", CliqueChain()});
  corpus.push_back({"empty", Graph::FromEdgeList(EdgeList(0))});
  corpus.push_back({"edgeless", Graph::FromEdgeList(EdgeList(50))});
  corpus.push_back({"single-edge", SingleEdge()});
  return corpus;
}

constexpr TcAlgorithm kAllAlgorithms[] = {
    TcAlgorithm::kGunrockBinarySearch, TcAlgorithm::kGunrockSortMerge,
    TcAlgorithm::kTriCore,             TcAlgorithm::kFox,
    TcAlgorithm::kBisson,              TcAlgorithm::kHu,
    TcAlgorithm::kPolak};

TEST(DifferentialTest, AllCountersAllStrategiesAgreeWithBruteForce) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  for (const CorpusEntry& entry : Corpus()) {
    const int64_t expected = CountTrianglesNodeIterator(entry.graph);
    for (TcAlgorithm algorithm : kAllAlgorithms) {
      for (DirectionStrategy direction :
           {DirectionStrategy::kIdBased, DirectionStrategy::kADirection}) {
        for (OrderingStrategy ordering :
             {OrderingStrategy::kOriginal, OrderingStrategy::kAOrder,
              OrderingStrategy::kDegree, OrderingStrategy::kRandom}) {
          PreprocessOptions options;
          options.direction = direction;
          options.ordering = ordering;
          options.calibrate = false;  // Keep the 7x2x4 sweep fast.
          const RunResult run =
              RunTriangleCount(entry.graph, algorithm, spec, options);
          EXPECT_EQ(run.triangles, expected)
              << entry.name << " / " << ToString(algorithm) << " / "
              << ToString(direction) << " / " << ToString(ordering);
        }
      }
    }
  }
}

TEST(DifferentialTest, BruteForceCountersAgreeOnCorpus) {
  for (const CorpusEntry& entry : Corpus()) {
    const int64_t node_it = CountTrianglesNodeIterator(entry.graph);
    EXPECT_EQ(CountTrianglesEdgeIterator(entry.graph), node_it) << entry.name;
    EXPECT_EQ(CountTrianglesForward(entry.graph), node_it) << entry.name;
  }
}

// Attaching a tracer must not perturb any count: instrumentation observes
// the pipeline, it never participates in it.
TEST(DifferentialTest, TracedRunsMatchUntracedRuns) {
  const DeviceSpec spec = DeviceSpec::TitanXpLike();
  const Graph g = GeneratePowerLawConfiguration(300, 2.3, 2, 40, 11);
  const int64_t expected = CountTrianglesNodeIterator(g);
  for (TcAlgorithm algorithm : kAllAlgorithms) {
    Tracer tracer;
    ExecContext ctx;
    ctx.tracer = &tracer;
    ctx.trace_id = tracer.NewTraceId();
    PreprocessOptions options;
    options.calibrate = false;
    const StatusOr<RunResult> run =
        RunTriangleCountWithContext(g, algorithm, spec, options, ctx);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->triangles, expected) << ToString(algorithm);
    // The run must have left stage spans behind (direct, order, count, and
    // the counter's own span at minimum).
    EXPECT_GE(tracer.size(), 4u) << ToString(algorithm);
  }
}

}  // namespace
}  // namespace gputc
