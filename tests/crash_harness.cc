#include "crash_harness.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

extern char** environ;

namespace gputc {
namespace testing {
namespace {

/// Drains an fd to a string after the child exits. Pipe capacity (64 KiB on
/// Linux) bounds what a non-draining parent could deadlock on, so the reader
/// threads-free approach here relies on the CLI's bounded output per run.
std::string DrainFd(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

}  // namespace

std::string GputcBinaryPath() {
#ifdef GPUTC_CLI_PATH
  return GPUTC_CLI_PATH;
#else
  return "gputc";
#endif
}

ChildResult RunGputc(const std::vector<std::string>& args,
                     const std::vector<std::string>& env_extra) {
  ChildResult result;

  int out_pipe[2];
  int err_pipe[2];
  if (::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0) {
    std::perror("pipe");
    return result;
  }

  // argv: binary + args + nullptr.
  const std::string binary = GputcBinaryPath();
  std::vector<std::string> argv_store;
  argv_store.reserve(args.size() + 1);
  argv_store.push_back(binary);
  for (const std::string& a : args) argv_store.push_back(a);
  std::vector<char*> argv;
  for (std::string& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);

  // env: parent's environment minus GPUTC_FAILPOINTS, plus env_extra. The
  // strip matters: CI chaos jobs run the whole test suite under an ambient
  // schedule, and the harness must control exactly which child crashes.
  std::vector<std::string> env_store;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "GPUTC_FAILPOINTS=", 17) == 0) continue;
    env_store.emplace_back(*e);
  }
  for (const std::string& e : env_extra) env_store.push_back(e);
  std::vector<char*> envp;
  for (std::string& e : env_store) envp.push_back(e.data());
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    return result;
  }
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    ::execve(binary.c_str(), argv.data(), envp.data());
    std::perror("execve");
    std::_Exit(127);
  }

  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  result.stdout_text = DrainFd(out_pipe[0]);
  result.stderr_text = DrainFd(err_pipe[0]);
  ::close(out_pipe[0]);
  ::close(err_pipe[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exit_code = 128 + WTERMSIG(status);
  }
  return result;
}

}  // namespace testing
}  // namespace gputc
