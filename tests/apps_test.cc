#include <gtest/gtest.h>

#include <numeric>

#include "apps/clustering.h"
#include "apps/ktruss.h"
#include "apps/recommendation.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "tc/cpu_counters.h"

namespace gputc {
namespace {

// --- Clustering coefficients -----------------------------------------------

TEST(ClusteringTest, CompleteGraphIsFullyClustered) {
  const Graph g = CompleteGraph(8);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
  for (double cc : LocalClusteringCoefficients(g)) {
    EXPECT_DOUBLE_EQ(cc, 1.0);
  }
}

TEST(ClusteringTest, TriangleFreeGraphsAreZero) {
  for (const Graph& g :
       {CycleGraph(10), StarGraph(12), GridGraph(4, 4),
        CompleteBipartiteGraph(3, 5)}) {
    EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
    EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
  }
}

TEST(ClusteringTest, PerVertexCountsSumToThreeTriangles) {
  const Graph g = GeneratePowerLawConfiguration(800, 2.0, 2, 100, 91);
  const std::vector<int64_t> counts = PerVertexTriangleCounts(g);
  const int64_t total = std::accumulate(counts.begin(), counts.end(),
                                        static_cast<int64_t>(0));
  EXPECT_EQ(total, 3 * CountTrianglesNodeIterator(g));
}

TEST(ClusteringTest, WheelHubAndRim) {
  // Wheel W_7: hub 0 adjacent to a 6-cycle. Hub: d=6, 6 triangles ->
  // cc = 12/30 = 0.4. Rim vertex: d=3, 2 triangles -> cc = 4/6.
  const Graph g = WheelGraph(7);
  const std::vector<double> cc = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(cc[0], 0.4);
  for (VertexId v = 1; v < 7; ++v) EXPECT_DOUBLE_EQ(cc[v], 2.0 / 3.0);
}

TEST(ClusteringTest, SmallWorldBeatsPowerLaw) {
  const Graph ws = GenerateWattsStrogatz(2000, 6, 0.05, 92);
  const Graph pl = GeneratePowerLawConfiguration(2000, 2.1, 3, 200, 92);
  EXPECT_GT(AverageClusteringCoefficient(ws),
            AverageClusteringCoefficient(pl));
}

// --- k-truss ----------------------------------------------------------------

TEST(KTrussTest, CompleteGraphTrussness) {
  // Every edge of K_n is in the n-truss (each edge has n-2 triangles).
  const TrussDecompositionResult r = DecomposeTruss(CompleteGraph(6));
  EXPECT_EQ(r.max_trussness, 6);
  for (int k : r.trussness) EXPECT_EQ(k, 6);
}

TEST(KTrussTest, TriangleFreeGraphIsTwoTruss) {
  const TrussDecompositionResult r = DecomposeTruss(CycleGraph(10));
  EXPECT_EQ(r.max_trussness, 2);
  for (int k : r.trussness) EXPECT_EQ(k, 2);
}

TEST(KTrussTest, CliqueWithTailSeparates) {
  // K_5 plus a pendant path: clique edges reach trussness 5, path edges 2.
  EdgeList list;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) list.Add(u, v);
  }
  list.Add(4, 5);
  list.Add(5, 6);
  const Graph g = Graph::FromEdgeList(std::move(list));
  const TrussDecompositionResult r = DecomposeTruss(g);
  EXPECT_EQ(r.max_trussness, 5);
  const auto profile = TrussProfile(r);
  EXPECT_EQ(profile.at(5), 10);  // Clique edges.
  EXPECT_EQ(profile.at(2), 2);   // Path edges.

  const Graph truss3 = KTrussSubgraph(g, 3);
  EXPECT_EQ(truss3.num_edges(), 10);
  const Graph truss6 = KTrussSubgraph(g, 6);
  EXPECT_EQ(truss6.num_edges(), 0);
}

TEST(KTrussTest, TrussnessIsMonotoneUnderSupport) {
  // In any graph, an edge's trussness is at most its support + 2.
  const Graph g = GenerateRmat(8, 6, 93);
  const TrussDecompositionResult r = DecomposeTruss(g);
  const auto& list = r.edges.edges();
  for (size_t e = 0; e < list.size(); ++e) {
    const int64_t support = CommonNeighborScore(g, list[e].u, list[e].v);
    EXPECT_LE(r.trussness[e], support + 2);
    EXPECT_GE(r.trussness[e], 2);
  }
}

TEST(KTrussTest, KTrussSubgraphSatisfiesDefinition) {
  // Every edge of the k-truss subgraph has >= k-2 triangles *within* it.
  const Graph g = LoadDataset("email-Eucore");
  const int k = 5;
  const Graph truss = KTrussSubgraph(g, k);
  for (VertexId u = 0; u < truss.num_vertices(); ++u) {
    for (VertexId v : truss.neighbors(u)) {
      if (u < v) {
        EXPECT_GE(CommonNeighborScore(truss, u, v), k - 2)
            << u << "-" << v;
      }
    }
  }
}

TEST(KTrussTest, EmptyGraph) {
  const TrussDecompositionResult r =
      DecomposeTruss(Graph::FromEdgeList(EdgeList{}));
  EXPECT_EQ(r.max_trussness, 2);
  EXPECT_TRUE(r.trussness.empty());
}

// --- Link recommendation -----------------------------------------------------

TEST(RecommendationTest, ScoresCommonNeighbors) {
  // Path 0-1-2: pair (0, 2) has one common neighbor.
  const Graph g = PathGraph(3);
  EXPECT_EQ(CommonNeighborScore(g, 0, 2), 1);
  EXPECT_EQ(CommonNeighborScore(g, 0, 1), 0);  // Adjacent; no common nbr.
  EXPECT_EQ(CommonNeighborScore(g, 0, 0), 0);
  EXPECT_EQ(CommonNeighborScore(g, 0, 99), 0);
}

TEST(RecommendationTest, RecommendsTheMissingCliqueEdge) {
  // K_5 minus one edge: that edge has 3 common neighbors, the strongest
  // possible recommendation.
  EdgeList list;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      if (!(u == 0 && v == 1)) list.Add(u, v);
    }
  }
  const Graph g = Graph::FromEdgeList(std::move(list));
  const auto recs = RecommendLinks(g);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0], (Recommendation{0, 1, 3}));
}

TEST(RecommendationTest, NeverRecommendsExistingEdges) {
  const Graph g = LoadDataset("email-Eucore");
  RecommendationOptions options;
  options.top_k = 50;
  for (const Recommendation& r : RecommendLinks(g, options)) {
    EXPECT_FALSE(g.HasEdge(r.u, r.v));
    EXPECT_LT(r.u, r.v);
    EXPECT_GT(r.score, 0);
  }
}

TEST(RecommendationTest, ResultsAreSortedAndUnique) {
  const Graph g = GeneratePowerLawConfiguration(500, 2.0, 2, 80, 94);
  RecommendationOptions options;
  options.top_k = 100;
  const auto recs = RecommendLinks(g, options);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].score, recs[i].score);
    EXPECT_FALSE(recs[i - 1].u == recs[i].u && recs[i - 1].v == recs[i].v);
  }
}

TEST(RecommendationTest, TriangleFreeStarStillFindsCandidates) {
  // Star: all leaf pairs share the hub.
  const Graph g = StarGraph(6);
  const auto recs = RecommendLinks(g);
  ASSERT_FALSE(recs.empty());
  for (const Recommendation& r : recs) EXPECT_EQ(r.score, 1);
}

}  // namespace
}  // namespace gputc
